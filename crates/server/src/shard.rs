//! `qf-shard`: scatter-gather flock execution over hash-partitioned,
//! replicated `qf-server` workers.
//!
//! The [`Coordinator`] is a [`RequestHandler`]: it plugs into the same
//! accept loop, framing, admission queue, and worker pool as the
//! standalone server ([`crate::net::Server::serve_handler`]), but
//! executes admitted flocks by **scatter-gather**:
//!
//! 1. The master catalog lives at the coordinator. Every mutation
//!    (`load`/`gen`) applies there first, then the catalog is
//!    hash-partitioned ([`qf_core::partition_database`], content-stable
//!    hashing) and every fragment is `sync`ed to each of its replica
//!    hosts ([`qf_core::replica_workers`]: fragment *i* lands on
//!    workers *i*, *i+1 mod n*, … up to `--replicas R`). Workers verify
//!    the fragment fingerprint before installing, so a torn push can
//!    never be served.
//! 2. A flock that passes the shardability check
//!    ([`qf_core::shard_key_pos`]) is planned at the coordinator (plan
//!    search sees full-catalog statistics), then each `FILTER` step is
//!    sent **once per fragment** as a fragment-scoped `partial` — the
//!    step as a mini-flock at a *vacuous* threshold, plus the
//!    already-merged upstream step outputs as scratch relations.
//!    Replicas hold bitwise-identical fragments, so any host's answer
//!    merges exactly.
//! 3. The coordinator merges partials algebraically (`COUNT`/`SUM` add,
//!    `MIN`/`MAX` extremize — [`qf_core::merge_scored_partials`]),
//!    applies the **real** threshold globally, and broadcasts the
//!    surviving step output to the next step.
//!
//! # Failure model
//!
//! Every worker has a health entry (`up`/`suspect`/`down`) driven by
//! consecutive failures: a circuit breaker opens (`down`) after
//! `fail_threshold` in a row and the coordinator stops scattering to —
//! or even dialing — that worker. A fragment's RPC tries its replicas
//! in placement order (primary first, skipping open breakers), fails
//! over on transport errors / draining workers / stale fragments, and
//! only when **every** replica is unavailable re-derives the fragment
//! from the master catalog and evaluates it locally (`rescatters` — the
//! PR-7 last resort, now behind R−1 replicas). The partition used for
//! re-derivation is cached across requests keyed by the master catalog
//! fingerprint, so repeated hits on a degraded fleet do not re-shard
//! the catalog every time.
//!
//! Tail latency is clamped by **hedging**: when a fragment's primary
//! has not answered within `hedge_after`, a duplicate request is
//! launched at the next live replica and whichever scored partial
//! lands first wins (`hedges_launched`/`hedges_won`).
//!
//! The way back is the **probe thread**: every `probe_interval` it
//! pings workers whose breaker is open over a fresh, strictly
//! I/O-timed connection (closed after the cycle — probes never pin a
//! worker's `--max-conns` budget), re-`sync`s every fragment the
//! worker hosts, and only then marks it `up` (`probes`/`rejoins`).
//! A worker that rejoined with a stale fragment is caught by the
//! fingerprint carried on every fragment-scoped `partial`: the worker
//! answers typed `no-frag`, the coordinator fails over and re-opens
//! the breaker so the probe re-syncs it.
//!
//! The monotone scored-result cache stays at the coordinator tier:
//! single-step runs are cached under the **vacuous** baseline (the
//! merged scored relation holds every group, so one sharded run
//! answers every future same-direction threshold of the query);
//! multi-step runs prune between steps and are cached at their own
//! threshold, exactly like the standalone server.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qf_core::{
    best_plan_with, direct_plan, evaluate_scored_partial, flock_result_from_scored,
    merge_scored_partials, partial_flock, partition_database, replica_workers, scored_schema,
    shard_of, shardable_program, vacuous_filter, worker_fragments, CancelToken, DeltaLimits,
    ExecContext, FilterStep, FlockDelta, FlockProgram, JoinOrderStrategy, QueryPlan,
};
use qf_storage::{tsv, Database, Relation, Schema, Tuple};

use crate::cache::{CacheKey, CachedResult};
use crate::client::{Client, ClientConfig};
use crate::error::{Result, ServerError};
use crate::pool::{Job, JobPayload};
use crate::protocol::{Request, RequestLimits, Response};
use crate::report::{extend_json, json_escape, json_report, json_u64};
use crate::service::{
    parse_program, refilter_scored, render_tsv, FlockService, RequestHandler, ServerConfig,
};

/// How often the gather loop re-polls for replies when no hedge is
/// pending, and the granularity at which the probe thread observes the
/// stop flag.
const GATHER_POLL: Duration = Duration::from_millis(100);

/// Extra wall-clock the gather loop allows past the request deadline
/// for a worker's own governor to deliver its typed timeout first.
const GATHER_GRACE: Duration = Duration::from_secs(5);

/// Shard-tier configuration: the worker fleet, replication factor, and
/// failure-detection knobs.
#[derive(Clone)]
pub struct ShardConfig {
    /// Worker addresses (`host:port`), one per shard. Worker `k` is the
    /// *primary* of fragment `k` and a replica of the `replicas - 1`
    /// fragments before it (mod n).
    pub addrs: Vec<String>,
    /// Relations replicated in full to every shard instead of being
    /// hash-partitioned (small dimension tables the shardability check
    /// may then treat as local everywhere).
    pub replicated: BTreeSet<String>,
    /// Robustness knobs for coordinator→shard RPC sessions.
    pub client: ClientConfig,
    /// Copies of every fragment (clamped to `[1, n]`). At 1 this is the
    /// PR-7 behavior: a dead worker always costs a local re-derivation.
    pub replicas: usize,
    /// Consecutive failures that open a worker's circuit breaker
    /// (`down`); fewer leave it `suspect` but still scattered to.
    pub fail_threshold: u32,
    /// Background probe period for down workers, milliseconds. `0`
    /// disables the thread (tests drive [`Coordinator::probe_now`]).
    pub probe_interval_ms: u64,
    /// Launch a hedged duplicate of a fragment RPC at the next live
    /// replica when the primary has not answered within this many
    /// milliseconds. `None` disables hedging.
    pub hedge_after_ms: Option<u64>,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            addrs: Vec::new(),
            replicated: BTreeSet::new(),
            client: ClientConfig {
                // One transparent retry against a wobbly worker; real
                // death is handled by failover, not by retrying
                // forever.
                retries: 1,
                ..ClientConfig::default()
            },
            replicas: 1,
            fail_threshold: 3,
            probe_interval_ms: 1_000,
            hedge_after_ms: None,
        }
    }
}

/// Builds a client session to a shard address — swappable so the chaos
/// tests can interpose [`crate::transport::NetChaos`] on every
/// coordinator→shard dial.
pub type ShardConnector = Arc<dyn Fn(&str, &ClientConfig) -> Result<Client> + Send + Sync>;

struct ShardSlot {
    addr: String,
    client: Mutex<Option<Client>>,
}

/// A worker's health as the coordinator sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerState {
    /// Healthy: scattered to normally.
    Up,
    /// Failing but under the breaker threshold: still scattered to
    /// (the failure may have been the request's fault, not the
    /// worker's).
    Suspect,
    /// Breaker open: not scattered to, not dialed for stats; only the
    /// probe talks to it until a full re-sync succeeds.
    Down,
}

impl WorkerState {
    /// The stable string used in `stats` (`worker_state` array).
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Up => "up",
            WorkerState::Suspect => "suspect",
            WorkerState::Down => "down",
        }
    }
}

#[derive(Default)]
struct Health {
    /// Consecutive failures since the last success.
    fails: u32,
    /// `true` once the breaker is open (reset only by a probe re-sync).
    down: bool,
}

/// Coordinator-side counters, surfaced as distinct fields in `stats` —
/// never folded into the per-request counters of [`FlockService`] (a
/// shard's timeout is not this coordinator's timeout).
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Partial RPCs attempted (including failovers and hedges).
    pub scatters: AtomicU64,
    /// Fragments recovered by local re-evaluation after every replica
    /// failed or was down.
    pub rescatters: AtomicU64,
    /// Flock requests executed scatter-gather.
    pub sharded: AtomicU64,
    /// Flock requests that failed the shardability check and ran
    /// locally against the master catalog.
    pub local_fallbacks: AtomicU64,
    /// Fragment RPCs served by a non-primary replica after the primary
    /// failed or had an open breaker.
    pub failovers: AtomicU64,
    /// Hedged duplicate RPCs launched against a replica because the
    /// primary exceeded the hedge budget.
    pub hedges_launched: AtomicU64,
    /// Hedged RPCs whose reply won the race.
    pub hedges_won: AtomicU64,
    /// Probe attempts against down workers.
    pub probes: AtomicU64,
    /// Down workers successfully re-synced and marked up again.
    pub rejoins: AtomicU64,
    /// `append`/`retract` batches propagated to the fleet as
    /// fragment-scoped deltas (no full fragment re-sync needed).
    pub delta_pushes: AtomicU64,
}

/// The cached fragment partition of the master catalog, keyed by the
/// master fingerprint so any mutation invalidates it wholesale.
/// Fragments are stored **TSV-round-tripped** — exactly the bytes a
/// worker reassembles from a `sync` — so local re-derivation, the
/// fragment fingerprints pushed to workers, and worker-side evaluation
/// all agree even for values the wire canonicalizes (digit-like
/// symbols parse back as integers).
struct FragCache {
    master_fp: u64,
    frags: Arc<Vec<Database>>,
    fps: Arc<Vec<u64>>,
}

/// State shared between request threads, detached RPC threads, and the
/// probe thread.
struct ShardCore {
    service: Arc<FlockService>,
    slots: Vec<ShardSlot>,
    health: Vec<Mutex<Health>>,
    replicated: BTreeSet<String>,
    client_config: ClientConfig,
    connector: RwLock<ShardConnector>,
    counters: ShardCounters,
    replicas: usize,
    fail_threshold: u32,
    hedge_after: Option<Duration>,
    frag_cache: Mutex<Option<FragCache>>,
    stop_probe: AtomicBool,
}

/// What one replica's fragment RPC produced, as seen by the gather
/// loop.
enum RpcReply {
    /// A scored partial, parsed and ready to merge.
    Scored(Relation),
    /// The worker could not serve this fragment (transport failure,
    /// draining, or a stale/missing fragment): fail over to the next
    /// replica.
    Failed(String),
    /// The worker answered with a typed error that failover cannot
    /// cure (timeout/budget/cancelled/eval): propagate its class.
    Refused { kind: String, detail: String },
}

/// What one *fragment* resolved to after failover and hedging.
enum FragOutcome {
    Scored(Relation),
    /// Every replica failed or was down: the caller re-derives locally.
    AllDead(String),
    Refused {
        kind: String,
        detail: String,
    },
}

/// Per-request failure-handling tallies, reported in the response meta
/// (the [`ShardCounters`] equivalents are process-lifetime totals).
#[derive(Default)]
struct ReqTally {
    rescatters: AtomicU64,
    failovers: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
}

impl ShardCore {
    /// Run `f` over worker `k`'s pooled session, dialing if needed. Any
    /// transport-level error tears the session down so the next call
    /// redials.
    fn with_client<T>(&self, k: usize, f: impl FnOnce(&mut Client) -> Result<T>) -> Result<T> {
        let slot = &self.slots[k];
        let mut guard = slot.client.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            let connector = Arc::clone(&self.connector.read().unwrap_or_else(|e| e.into_inner()));
            *guard = Some(connector(&slot.addr, &self.client_config)?);
        }
        let client = guard.as_mut().expect("session just ensured");
        match f(client) {
            Ok(v) => Ok(v),
            Err(e) => {
                *guard = None;
                Err(e)
            }
        }
    }

    /// Drop worker `k`'s pooled session so the next RPC redials.
    fn drop_session(&self, k: usize) {
        *self.slots[k]
            .client
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = None;
    }

    fn worker_state(&self, k: usize) -> WorkerState {
        let h = self.health[k].lock().unwrap_or_else(|e| e.into_inner());
        if h.down {
            WorkerState::Down
        } else if h.fails > 0 {
            WorkerState::Suspect
        } else {
            WorkerState::Up
        }
    }

    fn is_down(&self, k: usize) -> bool {
        self.health[k]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .down
    }

    /// A successful RPC closes the breaker and clears the failure run.
    fn note_success(&self, k: usize) {
        let mut h = self.health[k].lock().unwrap_or_else(|e| e.into_inner());
        h.fails = 0;
        h.down = false;
    }

    /// A failed RPC extends the failure run; at `fail_threshold` in a
    /// row the breaker opens and only the probe can close it again.
    fn note_failure(&self, k: usize) {
        let mut h = self.health[k].lock().unwrap_or_else(|e| e.into_inner());
        h.fails = h.fails.saturating_add(1);
        if h.fails >= self.fail_threshold {
            h.down = true;
        }
    }

    /// Open the breaker immediately — for *definitive* evidence like a
    /// `no-frag` answer (the worker is alive but cannot serve until the
    /// probe re-syncs it; counting up to the threshold would just burn
    /// scatters on an answer that cannot change).
    fn force_down(&self, k: usize) {
        let mut h = self.health[k].lock().unwrap_or_else(|e| e.into_inner());
        h.fails = h.fails.max(self.fail_threshold);
        h.down = true;
    }

    /// The fragment partition of the master catalog, cached across
    /// requests and invalidated by any mutation (the key is the master
    /// fingerprint). Returns the TSV-round-tripped fragments and their
    /// content fingerprints — the same values workers verify on `sync`
    /// and `partial`.
    fn fragments(&self, master: &Database, master_fp: u64) -> (Arc<Vec<Database>>, Arc<Vec<u64>>) {
        let mut guard = self.frag_cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = guard.as_ref() {
            if c.master_fp == master_fp {
                return (Arc::clone(&c.frags), Arc::clone(&c.fps));
            }
        }
        let n = self.slots.len().max(1);
        let frags: Vec<Database> = partition_database(master, n, &self.replicated)
            .iter()
            .map(roundtrip_database)
            .collect();
        let fps: Vec<u64> = frags.iter().map(Database::fingerprint).collect();
        let frags = Arc::new(frags);
        let fps = Arc::new(fps);
        *guard = Some(FragCache {
            master_fp,
            frags: Arc::clone(&frags),
            fps: Arc::clone(&fps),
        });
        (frags, fps)
    }

    /// The client config probes dial with: fail fast (no transparent
    /// retries — the probe loop IS the retry), bounded connect, and a
    /// **strict I/O timeout, never unset** — a probe must never sit on
    /// a worker connection under an idle timeout's grace.
    fn probe_config(&self) -> ClientConfig {
        ClientConfig {
            retries: 0,
            connect_timeout: self
                .client_config
                .connect_timeout
                .min(Duration::from_secs(2)),
            io_timeout: Some(
                self.client_config
                    .io_timeout
                    .unwrap_or(Duration::from_secs(10)),
            ),
            ..self.client_config.clone()
        }
    }

    /// One replica's fragment RPC, classified for the gather loop.
    fn rpc_partial(
        &self,
        k: usize,
        text: &str,
        scratch: Vec<String>,
        frag: (usize, u64),
        limits: RequestLimits,
    ) -> RpcReply {
        self.counters.scatters.fetch_add(1, Ordering::Relaxed);
        let sent = self.with_client(k, |c| c.partial(text, scratch, Some(frag), limits));
        match sent {
            Err(e) => RpcReply::Failed(e.to_string()),
            // A draining shard answers typed `shutting-down` on a still
            // -open session but will not serve this scatter or any
            // later one: drop the session and fail over like a death.
            Ok(Response::Err { kind, detail }) if kind == "shutting-down" => {
                self.drop_session(k);
                RpcReply::Failed(format!("shard draining: {detail}"))
            }
            // `no-frag` is definitive: the worker is missing this
            // fragment or holds a stale copy. Open its breaker right
            // away so the probe re-syncs it, and fail over.
            Ok(Response::Err { kind, detail }) if kind == "no-frag" => {
                self.force_down(k);
                RpcReply::Failed(format!("fragment not served: {detail}"))
            }
            Ok(Response::Err { kind, detail }) => RpcReply::Refused { kind, detail },
            Ok(Response::Ok { body, .. }) => {
                match tsv::read_tsv(std::io::Cursor::new(body.as_bytes())) {
                    Ok(rel) => RpcReply::Scored(rel),
                    Err(e) => RpcReply::Refused {
                        kind: "proto".to_string(),
                        detail: format!("unparseable scored partial: {e}"),
                    },
                }
            }
        }
    }

    /// Launch one replica RPC on a detached thread. Detached on
    /// purpose: a scoped join would make the fragment wait for the
    /// *loser* of a hedge race too, which is exactly the tail the hedge
    /// exists to cut. Returns `false` if the thread could not spawn.
    #[allow(clippy::too_many_arguments)]
    fn launch_rpc(
        self: &Arc<Self>,
        k: usize,
        text: &str,
        scratch: &[String],
        frag: (usize, u64),
        limits: RequestLimits,
        was_hedge: bool,
        tx: &mpsc::Sender<(usize, RpcReply, bool)>,
    ) -> bool {
        let core = Arc::clone(self);
        let text = text.to_string();
        let scratch = scratch.to_vec();
        let tx = tx.clone();
        std::thread::Builder::new()
            .name("qf-scatter".to_string())
            .spawn(move || {
                let reply = core.rpc_partial(k, &text, scratch, frag, limits);
                // The receiver is gone once a winner returned: a loser's
                // send failing is the expected end of a hedge race.
                let _ = tx.send((k, reply, was_hedge));
            })
            .is_ok()
    }

    /// Resolve one fragment: primary first, fail over through live
    /// replicas, hedge when the in-flight RPC exceeds the hedge budget,
    /// first scored partial wins.
    #[allow(clippy::too_many_arguments)]
    fn fragment_partial(
        self: &Arc<Self>,
        frag: usize,
        fp: u64,
        text: &str,
        scratch: &[String],
        limits: RequestLimits,
        deadline: Option<Instant>,
        tally: &ReqTally,
    ) -> FragOutcome {
        let n = self.slots.len();
        let primary = frag % n.max(1);
        let cands: Vec<usize> = replica_workers(frag, n, self.replicas)
            .into_iter()
            .filter(|&w| !self.is_down(w))
            .collect();
        if cands.is_empty() {
            return FragOutcome::AllDead(format!(
                "all {} replica(s) of fragment {frag} have open breakers",
                self.replicas
            ));
        }
        let (tx, rx) = mpsc::channel();
        let mut fails: Vec<String> = Vec::new();
        let mut next = 0usize;
        let mut pending = 0usize;
        let mut hedged = false;
        let launch = |k: usize, was_hedge: bool, fails: &mut Vec<String>| -> usize {
            if self.launch_rpc(k, text, scratch, (frag, fp), limits, was_hedge, &tx) {
                1
            } else {
                fails.push(format!("worker {k}: could not spawn rpc thread"));
                0
            }
        };
        pending += launch(cands[next], false, &mut fails);
        next += 1;
        loop {
            if pending == 0 {
                // Spawn failures exhausted the candidate list without a
                // single RPC in flight.
                if next < cands.len() {
                    pending += launch(cands[next], false, &mut fails);
                    next += 1;
                    continue;
                }
                return FragOutcome::AllDead(fails.join("; "));
            }
            // While a hedge is still possible, wait only up to the
            // hedge budget; afterwards poll at a coarse period, bounded
            // by the request deadline plus grace.
            let hedge_wait = self.hedge_after.filter(|_| !hedged && next < cands.len());
            match rx.recv_timeout(hedge_wait.unwrap_or(GATHER_POLL)) {
                Ok((w, RpcReply::Scored(rel), was_hedge)) => {
                    self.note_success(w);
                    if was_hedge {
                        self.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
                        tally.hedges_won.fetch_add(1, Ordering::Relaxed);
                    } else if w != primary {
                        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                        tally.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    return FragOutcome::Scored(rel);
                }
                Ok((w, RpcReply::Failed(detail), _)) => {
                    self.note_failure(w);
                    pending -= 1;
                    fails.push(format!("worker {w} ({}): {detail}", self.slots[w].addr));
                    if next < cands.len() {
                        pending += launch(cands[next], false, &mut fails);
                        next += 1;
                    } else if pending == 0 {
                        return FragOutcome::AllDead(fails.join("; "));
                    }
                }
                Ok((w, RpcReply::Refused { kind, detail }, _)) => {
                    return FragOutcome::Refused {
                        kind,
                        detail: format!("worker {w}: {detail}"),
                    };
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if hedge_wait.is_some() {
                        // The in-flight RPC blew the hedge budget:
                        // duplicate it at the next live replica and let
                        // the two race.
                        self.counters
                            .hedges_launched
                            .fetch_add(1, Ordering::Relaxed);
                        tally.hedges_launched.fetch_add(1, Ordering::Relaxed);
                        hedged = true;
                        pending += launch(cands[next], true, &mut fails);
                        next += 1;
                    } else if deadline.is_some_and(|d| Instant::now() >= d + GATHER_GRACE) {
                        // The workers' own governors should have tripped
                        // long ago; give up on the replies, typed.
                        return FragOutcome::Refused {
                            kind: "timeout".to_string(),
                            detail: format!("fragment {frag}: no replica replied by the deadline"),
                        };
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Unreachable (we hold a sender), but never hang.
                    return FragOutcome::AllDead("rpc channel closed".to_string());
                }
            }
        }
    }
}

/// Re-read a fragment through the TSV wire format, yielding the exact
/// catalog a worker reassembles from a `sync` of it (digit-like
/// symbols canonicalize to integers on the way).
fn roundtrip_database(frag: &Database) -> Database {
    let mut out = Database::new();
    for rel in frag.iter() {
        match tsv::read_tsv(std::io::Cursor::new(render_tsv(rel).as_bytes())) {
            Ok(r) => out.insert(r),
            // In-memory render/parse of a valid relation cannot fail;
            // keep the original rather than dropping data if it ever
            // does.
            Err(_) => out.insert(rel.clone()),
        }
    }
    out
}

/// The scatter-gather front end over a fleet of `qf-server` workers.
pub struct Coordinator {
    core: Arc<ShardCore>,
    probe_handle: Mutex<Option<JoinHandle<()>>>,
}

impl Coordinator {
    /// Build a coordinator over `shard.addrs` workers, holding `db` as
    /// the master catalog. Connections are dialed lazily; call
    /// [`Coordinator::push_catalog`] once the workers are reachable if
    /// `db` is non-empty (mutations re-push automatically). Spawns the
    /// health-probe thread unless `shard.probe_interval_ms` is zero.
    pub fn new(config: ServerConfig, shard: ShardConfig, db: Database) -> Coordinator {
        Coordinator::with_service(Arc::new(FlockService::new(config, db)), shard)
    }

    /// Build a coordinator over a pre-constructed service — the
    /// `--data-dir` deployment passes a WAL-backed
    /// [`FlockService::with_wal`] so master-catalog mutations are
    /// durable and a coordinator restart recovers, re-partitions, and
    /// re-syncs the exact acknowledged catalog.
    pub fn with_service(service: Arc<FlockService>, shard: ShardConfig) -> Coordinator {
        let n = shard.addrs.len();
        let core = Arc::new(ShardCore {
            service,
            slots: shard
                .addrs
                .into_iter()
                .map(|addr| ShardSlot {
                    addr,
                    client: Mutex::new(None),
                })
                .collect(),
            health: (0..n).map(|_| Mutex::new(Health::default())).collect(),
            replicated: shard.replicated,
            client_config: shard.client,
            connector: RwLock::new(Arc::new(|addr: &str, cfg: &ClientConfig| {
                Client::connect_with(addr, cfg.clone())
            }) as ShardConnector),
            counters: ShardCounters::default(),
            replicas: shard.replicas.clamp(1, n.max(1)),
            fail_threshold: shard.fail_threshold.max(1),
            hedge_after: shard.hedge_after_ms.map(Duration::from_millis),
            frag_cache: Mutex::new(None),
            stop_probe: AtomicBool::new(false),
        });
        let probe_handle = (shard.probe_interval_ms > 0 && n > 0)
            .then(|| {
                let core = Arc::clone(&core);
                let interval = Duration::from_millis(shard.probe_interval_ms);
                std::thread::Builder::new()
                    .name("qf-probe".to_string())
                    .spawn(move || probe_loop(&core, interval))
                    .ok()
            })
            .flatten();
        Coordinator {
            core,
            probe_handle: Mutex::new(probe_handle),
        }
    }

    /// Replace the dial function (chaos tests wrap each shard session
    /// in a fault-injecting transport). Takes effect for every later
    /// dial, including the probe thread's.
    pub fn with_connector(self, connector: ShardConnector) -> Coordinator {
        *self
            .core
            .connector
            .write()
            .unwrap_or_else(|e| e.into_inner()) = connector;
        self
    }

    /// Number of shards (= fragments) in the fleet.
    pub fn num_shards(&self) -> usize {
        self.core.slots.len()
    }

    /// Coordinator-tier counters (distinct from the service's).
    pub fn shard_counters(&self) -> &ShardCounters {
        &self.core.counters
    }

    /// The health registry's view of worker `k`.
    pub fn worker_state(&self, k: usize) -> WorkerState {
        self.core.worker_state(k)
    }

    /// Run one probe cycle synchronously: for every worker with an open
    /// breaker, dial fresh, ping, re-`sync` every fragment it hosts,
    /// and mark it up on full success. Tests and operators drive this
    /// directly; the background thread calls it on its interval.
    pub fn probe_now(&self) {
        probe_cycle(&self.core);
    }

    /// Partition the master catalog (cached by fingerprint) and `sync`
    /// every fragment to each of its live replica hosts. Called after
    /// every mutation; also available for initial seeding.
    ///
    /// Succeeds when every fragment with at least one **live** host was
    /// installed somewhere; fragments whose hosts are all down are
    /// skipped (scatters re-derive them locally until the probe
    /// re-syncs a host, which ships the current partition anyway). A
    /// live host that refuses its sync fails the push with a typed,
    /// retryable `shard-lost`.
    pub fn push_catalog(&self) -> Result<()> {
        let core = &self.core;
        let n = core.slots.len();
        if n == 0 {
            return Ok(());
        }
        let (db, fp) = core.service.snapshot();
        let (frags, fps) = core.fragments(&db, fp);
        let mut synced = vec![false; n];
        let mut had_live_host = vec![false; n];
        let mut errors: Vec<String> = Vec::new();
        for w in 0..n {
            if core.is_down(w) {
                continue;
            }
            let mut worker_ok = true;
            for f in worker_fragments(w, n, core.replicas) {
                had_live_host[f] = true;
                let rels: Vec<String> = frags[f].iter().map(render_tsv).collect();
                match core.with_client(w, |c| c.sync(f, fps[f], rels)) {
                    Ok(Response::Ok { .. }) => synced[f] = true,
                    Ok(Response::Err { kind, detail }) => {
                        errors.push(format!("worker {w} rejected sync ({kind}): {detail}"));
                        worker_ok = false;
                        break;
                    }
                    Err(e) => {
                        errors.push(format!("worker {w}: {e}"));
                        worker_ok = false;
                        break;
                    }
                }
            }
            if worker_ok {
                core.note_success(w);
            } else {
                core.note_failure(w);
            }
        }
        for f in 0..n {
            if had_live_host[f] && !synced[f] {
                return Err(ServerError::ShardLost {
                    shard: f,
                    detail: errors.join("; "),
                });
            }
        }
        Ok(())
    }

    /// Admitted `append`/`retract` at the coordinator: mutate the
    /// master durably first (which also delta-maintains the
    /// coordinator's own result cache), then ship **only the delta
    /// tuples** to the affected fragments' replica workers —
    /// partitioned by the same shard key as the catalog itself — via
    /// [`Coordinator::push_delta`]. Any hiccup on the delta path
    /// (cold/stale partition cache, a live worker refusing its
    /// fragment delta) falls back to the full [`Coordinator::push_catalog`].
    /// The mutation itself already committed, so the client's retry
    /// policy only replays it on responses certifying non-execution.
    ///
    /// A frag-scoped mutation addresses *this* node's own fragment
    /// store (nested topologies); no fleet push.
    fn mutate_and_push(
        &self,
        rel: &str,
        tsv: &str,
        frag: Option<(usize, u64)>,
        retract: bool,
    ) -> Response {
        let service = &self.core.service;
        let local = |frag| {
            if retract {
                service.handle_retract_admitted(rel, tsv, frag)
            } else {
                service.handle_append_admitted(rel, tsv, frag)
            }
        };
        if frag.is_some() {
            return local(frag);
        }
        let (_, old_fp) = service.snapshot();
        let resp = local(None);
        if resp.is_ok() {
            if self.push_delta(rel, tsv, retract, old_fp).is_err() {
                if let Err(e) = self.push_catalog() {
                    return Response::from_error(&e);
                }
            }
        }
        resp
    }

    /// Route a just-committed delta to the worker fleet without
    /// re-shipping whole fragments: partition the delta's tuples by
    /// the catalog's own shard key (first column; replicated relations
    /// land on every fragment), apply each part to the cached
    /// fragment through the same WAL routine workers use, and ship the
    /// part to each live replica host as a fragment-scoped
    /// `append`/`retract` carrying the expected post-delta fragment
    /// fingerprint. The cached partition is updated in place on full
    /// success, so the next scatter sees fingerprints consistent with
    /// what workers now hold.
    ///
    /// Any error means "the cheap path could not prove the fleet
    /// converged" — the caller falls back to a full catalog push.
    /// Down workers are skipped (the probe's rejoin re-sync ships the
    /// current partition anyway).
    fn push_delta(&self, rel: &str, tsv: &str, retract: bool, old_fp: u64) -> Result<()> {
        let core = &self.core;
        let n = core.slots.len();
        if n == 0 {
            return Ok(());
        }
        let delta = tsv::read_tsv(std::io::Cursor::new(tsv.as_bytes()))
            .map_err(|e| ServerError::Parse(e.to_string()))?;
        let (_, new_fp) = core.service.snapshot();
        // The cached partition must describe exactly what workers hold
        // — the pre-mutation catalog. Cold or stale (a concurrent
        // mutation won the race) means the delta's base is unknown.
        let (mut frags, mut fps) = {
            let guard = core.frag_cache.lock().unwrap_or_else(|e| e.into_inner());
            match guard.as_ref() {
                Some(c) if c.master_fp == old_fp => ((*c.frags).clone(), (*c.fps).clone()),
                _ => {
                    return Err(ServerError::Eval(
                        "fragment cache cold or stale; full push required".to_string(),
                    ))
                }
            }
        };
        // Partition the delta exactly like the catalog itself.
        let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); n];
        if core.replicated.contains(rel) {
            for part in &mut parts {
                *part = delta.tuples().to_vec();
            }
        } else {
            for t in delta.iter() {
                parts[shard_of(t.get(0), n)].push(t.clone());
            }
        }
        // Advance each affected cached fragment through the same WAL
        // apply routine the workers run, yielding the fingerprints
        // they must land on.
        let mut shipments: Vec<(usize, String)> = Vec::new();
        for (f, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let part_rel = Relation::from_tuples(delta.schema().clone(), part);
            let part_tsv = render_tsv(&part_rel);
            let record = if retract {
                qf_storage::WalRecord::Retract {
                    tsv: part_tsv.clone(),
                }
            } else {
                qf_storage::WalRecord::Append {
                    tsv: part_tsv.clone(),
                }
            };
            qf_storage::Wal::apply(&mut frags[f], &record)
                .map_err(|e| ServerError::Eval(e.to_string()))?;
            fps[f] = frags[f].fingerprint();
            shipments.push((f, part_tsv));
        }
        for (f, part_tsv) in &shipments {
            for w in replica_workers(*f, n, core.replicas) {
                if core.is_down(w) {
                    continue;
                }
                let sent = core.with_client(w, |c| {
                    if retract {
                        c.retract_frag(rel, part_tsv, *f, fps[*f])
                    } else {
                        c.append_frag(rel, part_tsv, *f, fps[*f])
                    }
                });
                match sent {
                    Ok(Response::Ok { .. }) => core.note_success(w),
                    Ok(Response::Err { kind, detail }) => {
                        core.note_failure(w);
                        return Err(ServerError::Eval(format!(
                            "worker {w} refused fragment {f} delta ({kind}): {detail}"
                        )));
                    }
                    Err(e) => {
                        core.note_failure(w);
                        return Err(ServerError::Eval(format!(
                            "worker {w}: fragment {f} delta failed: {e}"
                        )));
                    }
                }
            }
        }
        // Install the advanced partition — but only if no concurrent
        // mutation moved the cache underneath us (then *its* push is
        // authoritative and ours must fall back to a full sync).
        let mut guard = core.frag_cache.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(c) if c.master_fp == old_fp => {
                *guard = Some(FragCache {
                    master_fp: new_fp,
                    frags: Arc::new(frags),
                    fps: Arc::new(fps),
                });
                core.counters.delta_pushes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => Err(ServerError::Eval(
                "fragment cache moved during delta push".to_string(),
            )),
        }
    }

    /// Scatter one step across the fragments and gather the scored
    /// partials: each fragment fails over through its replicas (hedging
    /// included), and a fragment with no usable replica is re-derived
    /// from the cached partition and evaluated locally.
    #[allow(clippy::too_many_arguments)]
    fn scatter_step(
        &self,
        text: &str,
        scratch: &[String],
        limits: RequestLimits,
        frags: &[Database],
        fps: &[u64],
        scratch_rels: &[(String, Relation)],
        mini: &qf_core::QueryFlock,
        ctx: &ExecContext,
        deadline: Option<Instant>,
        tally: &ReqTally,
    ) -> Result<Vec<Relation>> {
        let core = &self.core;
        let n = core.slots.len();
        let outcomes: Vec<FragOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|f| {
                    s.spawn(move || {
                        core.fragment_partial(f, fps[f], text, scratch, limits, deadline, tally)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| FragOutcome::Refused {
                        kind: "eval".to_string(),
                        detail: "scatter thread panicked".to_string(),
                    })
                })
                .collect()
        });
        let mut parts = Vec::with_capacity(n);
        for (f, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                FragOutcome::Scored(rel) => parts.push(rel),
                FragOutcome::Refused { kind, detail } => {
                    return Err(match kind.as_str() {
                        "timeout" => ServerError::Timeout {
                            stage: "shard",
                            budget_ms: limits.timeout_ms.unwrap_or(0),
                        },
                        "cancelled" => ServerError::Cancelled,
                        "budget" => ServerError::Budget(format!("fragment {f}: {detail}")),
                        _ => ServerError::Eval(format!("fragment {f} ({kind}): {detail}")),
                    })
                }
                FragOutcome::AllDead(detail) => {
                    // Last resort: the master catalog reproduces any
                    // fragment deterministically; the partition is
                    // cached across requests, so this costs one local
                    // evaluation, not a re-shard of the catalog.
                    let mut frag = frags[f].clone();
                    for (_, rel) in scratch_rels {
                        frag.insert(rel.clone());
                    }
                    let scored =
                        evaluate_scored_partial(mini, &frag, JoinOrderStrategy::Greedy, ctx)
                            .map_err(|e| ServerError::ShardLost {
                                shard: f,
                                detail: format!("{detail}; local re-derivation also failed: {e}"),
                            })?;
                    core.counters.rescatters.fetch_add(1, Ordering::Relaxed);
                    tally.rescatters.fetch_add(1, Ordering::Relaxed);
                    parts.push(scored);
                }
            }
        }
        Ok(parts)
    }

    /// The sharded flock path: plan at the coordinator, scatter each
    /// step vacuous, merge algebraically, threshold globally.
    fn eval_scatter(
        &self,
        program: &FlockProgram,
        limits: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Result<Response> {
        let start = Instant::now();
        let service = &self.core.service;
        let flock = program.flock().clone();
        let filter = *flock.filter();
        let canonical_filter = flock.canonical_filter();
        let effective = service.admission_limits(limits)?;
        let (db, fp) = service.snapshot();
        let key = CacheKey {
            query: program.canonical_query_text(),
            agg_pos: flock.agg_head_pos(),
            catalog_fp: fp,
        };
        let n = self.core.slots.len();

        // Coordinator-tier monotone cache: one sharded run answers
        // every threshold its baseline subsumes, no scatter at all.
        if let Some(hit) = service.result_cache_lookup(&key, &canonical_filter) {
            service.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let result = flock_result_from_scored(&flock, &hit.scored, &filter);
            let meta = extend_json(
                &json_report(
                    "shard-cache",
                    result.len(),
                    start.elapsed().as_millis(),
                    &qf_core::ExecStats::default(),
                    0,
                    0,
                    &service.cache_report(true, true),
                ),
                &format!(
                    "\"sharded\":true,\"shards\":{n},\"rescatters\":0,\"failovers\":0,\
                     \"hedges_launched\":0,\"hedges_won\":0"
                ),
            );
            return Ok(Response::Ok {
                meta,
                body: render_tsv(&result),
            });
        }
        service
            .counters
            .cache_misses
            .fetch_add(1, Ordering::Relaxed);

        let ctx = service.exec_context(&effective, granted_threads, deadline, cancel);

        // Plan at the coordinator: the search sees full-catalog
        // statistics, and shards execute exactly the steps it picks.
        let mut plan_cached = false;
        let cached_steps = service.plan_cache_lookup(&key);
        let (plan, strategy) =
            match cached_steps.and_then(|steps| QueryPlan::new(flock.clone(), steps).ok()) {
                Some(plan) => {
                    plan_cached = true;
                    (plan, "scatter-gather(plan-cache)")
                }
                None => {
                    let searched = if filter.is_monotone() {
                        best_plan_with(&flock, &db, &ctx).ok().map(|(plan, _)| plan)
                    } else {
                        None
                    };
                    match searched {
                        Some(plan) => {
                            service.plan_cache_insert(&key, plan.steps.clone());
                            (plan, "scatter-gather")
                        }
                        None => (
                            direct_plan(&flock).map_err(ServerError::from_eval)?,
                            "scatter-gather(direct)",
                        ),
                    }
                }
            };

        // The fragment partition (and the fingerprints workers verify):
        // cached across requests, keyed by the master fingerprint.
        let (frags, fps) = self.core.fragments(&db, fp);

        let budget_ms = effective.timeout_ms.unwrap_or(0);
        let last = plan.steps.len() - 1;
        let mut completed: Vec<(String, Relation)> = Vec::new();
        let tally = ReqTally::default();
        let mut final_scored: Option<Relation> = None;
        for (i, step) in plan.steps.iter().enumerate() {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                return Err(ServerError::Cancelled);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(ServerError::Timeout {
                    stage: "eval",
                    budget_ms,
                });
            }
            let mini = partial_flock(step, &filter).map_err(ServerError::from_eval)?;
            let text = mini.render();
            let scratch_rels: Vec<(String, Relation)> = {
                let referenced = referenced_preds(step);
                completed
                    .iter()
                    .filter(|(name, _)| referenced.contains(name.as_str()))
                    .cloned()
                    .collect()
            };
            let scratch: Vec<String> = scratch_rels
                .iter()
                .map(|(_, rel)| render_tsv(rel))
                .collect();
            // Deadline propagation: each shard gets what is *left* of
            // the admission-stamped budget, not a fresh clock.
            let step_limits = RequestLimits {
                max_rows: effective.max_rows,
                mem_budget: effective.mem_budget,
                timeout_ms: match deadline {
                    Some(d) => Some(
                        (d.saturating_duration_since(Instant::now()).as_millis() as u64).max(1),
                    ),
                    None => effective.timeout_ms,
                },
                threads: None,
            };
            let parts = self.scatter_step(
                &text,
                &scratch,
                step_limits,
                &frags,
                &fps,
                &scratch_rels,
                &mini,
                &ctx,
                deadline,
                &tally,
            )?;
            let merged = merge_scored_partials(&filter.agg, scored_schema(step), &parts)
                .map_err(ServerError::from_eval)?;
            if i == last {
                final_scored = Some(merged);
            } else {
                // A-priori pruning between steps, on globally-correct
                // aggregates: threshold the merged partials with the
                // *real* filter, project the aggregate away, broadcast.
                let survivors = refilter_scored(&merged, &filter);
                completed.push((step.output.clone(), project_step_output(&survivors, step)));
            }
        }
        let scored = final_scored.expect("plans have at least one step");
        let result = flock_result_from_scored(&flock, &scored, &filter);
        // Single-step runs were evaluated vacuous end to end: the
        // scored relation holds *every* group, so cache it under the
        // vacuous baseline — one sharded run then answers every future
        // same-direction threshold. Multi-step runs pruned between
        // steps at the real threshold; they answer what it subsumes.
        let baseline = if plan.steps.len() == 1 {
            vacuous_filter(&canonical_filter)
        } else {
            canonical_filter
        };
        // Coordinator-tier entries are delta-maintainable too: the
        // coordinator holds the master catalog, so its `commit_record`
        // maintains these in place on `append`/`retract` exactly like
        // the standalone server (shardable programs never carry views,
        // so only the flock-shape gate applies).
        let delta = FlockDelta::maintainable(&flock)
            .then(|| FlockDelta::build(&flock, &db, &DeltaLimits::default()).ok())
            .flatten()
            .map(|d| Arc::new(Mutex::new(d)));
        service.result_cache_insert(
            key,
            CachedResult {
                baseline,
                scored,
                strategy: strategy.to_string(),
                delta,
            },
        );
        self.core.counters.sharded.fetch_add(1, Ordering::Relaxed);
        let meta = extend_json(
            &json_report(
                strategy,
                result.len(),
                start.elapsed().as_millis(),
                &ctx.stats(),
                0,
                0,
                &service.cache_report(false, plan_cached),
            ),
            &format!(
                "\"sharded\":true,\"shards\":{n},\"rescatters\":{},\"failovers\":{},\
                 \"hedges_launched\":{},\"hedges_won\":{}",
                tally.rescatters.load(Ordering::Relaxed),
                tally.failovers.load(Ordering::Relaxed),
                tally.hedges_launched.load(Ordering::Relaxed),
                tally.hedges_won.load(Ordering::Relaxed),
            ),
        );
        Ok(Response::Ok {
            meta,
            body: render_tsv(&result),
        })
    }

    /// The admitted flock path: sharded when the program qualifies,
    /// local (against the master catalog) when it does not.
    fn eval_flock_request(
        &self,
        text: &str,
        support: Option<i64>,
        limits: &RequestLimits,
        granted_threads: usize,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Response {
        let service = &self.core.service;
        let program = match parse_program(text, support) {
            Ok(p) => p,
            Err(e) => {
                service.counters.requests.fetch_add(1, Ordering::Relaxed);
                return Response::from_error(&e);
            }
        };
        let shardable = !self.core.slots.is_empty()
            && shardable_program(&program, &self.core.replicated).is_some();
        if !shardable {
            self.core
                .counters
                .local_fallbacks
                .fetch_add(1, Ordering::Relaxed);
            let resp = service.handle_flock_admitted(
                text,
                support,
                limits,
                granted_threads,
                deadline,
                cancel,
            );
            return match resp {
                Response::Ok { meta, body } => Response::Ok {
                    meta: extend_json(&meta, "\"sharded\":false"),
                    body,
                },
                err => err,
            };
        }
        service.counters.requests.fetch_add(1, Ordering::Relaxed);
        match self.eval_scatter(&program, limits, granted_threads, deadline, cancel) {
            Ok(resp) => resp,
            Err(e) => {
                match &e {
                    ServerError::Timeout { .. } => service.note_timeout(),
                    ServerError::Cancelled => service.note_cancelled(),
                    _ => {}
                }
                Response::from_error(&e)
            }
        }
    }

    /// `stats` with the fleet rolled up: the coordinator's own counters
    /// stay pure, and per-shard `timeouts`/`cancelled`/`cache_hits`
    /// appear only under distinct `shard_*` keys — summing them into
    /// the coordinator's fields would double-count every event once
    /// here and once on the shard that served it. Workers that did not
    /// report (down, or the stats RPC failed) are **named** in
    /// `shard_stats_missing` with `shard_stats_partial:true`, so a
    /// dashboard can tell "zero" from "unknown"; down workers are not
    /// even dialed (the probe owns talking to them).
    fn stats_with_shards(&self) -> Response {
        let core = &self.core;
        let base = core.service.stats_json();
        let mut live = 0u64;
        // requests, hits, misses, timeouts, cancelled, rejected, plus
        // the four delta-maintenance counters.
        let mut rollup = [0u64; 10];
        let mut missing: Vec<&str> = Vec::new();
        for k in 0..core.slots.len() {
            if core.is_down(k) {
                missing.push(&core.slots[k].addr);
                continue;
            }
            let Ok(Response::Ok { meta, .. }) = core.with_client(k, |c| c.stats()) else {
                core.note_failure(k);
                missing.push(&core.slots[k].addr);
                continue;
            };
            live += 1;
            for (slot, key) in [
                "requests",
                "cache_hits",
                "cache_misses",
                "timeouts",
                "cancelled",
                "rejected",
                "delta_applied",
                "delta_maintained",
                "delta_rebuilds",
                "recheck_tuples",
            ]
            .iter()
            .enumerate()
            {
                rollup[slot] += json_u64(&meta, key).unwrap_or(0);
            }
        }
        let sc = &core.counters;
        let worker_state: Vec<String> = (0..core.slots.len())
            .map(|k| format!("\"{}\"", core.worker_state(k).as_str()))
            .collect();
        let missing_json: Vec<String> = missing
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        let extra = format!(
            "\"shards\":{},\"shards_live\":{live},\"replicas\":{},\"scatters\":{},\
             \"rescatters\":{},\"sharded_runs\":{},\"local_fallbacks\":{},\"failovers\":{},\
             \"hedges_launched\":{},\"hedges_won\":{},\"probes\":{},\"rejoins\":{},\
             \"worker_state\":[{}],\"shard_stats_partial\":{},\"shard_stats_missing\":[{}],\
             \"shard_requests\":{},\"shard_cache_hits\":{},\"shard_cache_misses\":{},\
             \"shard_timeouts\":{},\"shard_cancelled\":{},\"shard_rejected\":{},\
             \"shard_delta_applied\":{},\"shard_delta_maintained\":{},\
             \"shard_delta_rebuilds\":{},\"shard_recheck_tuples\":{},\"delta_pushes\":{}",
            core.slots.len(),
            core.replicas,
            sc.scatters.load(Ordering::Relaxed),
            sc.rescatters.load(Ordering::Relaxed),
            sc.sharded.load(Ordering::Relaxed),
            sc.local_fallbacks.load(Ordering::Relaxed),
            sc.failovers.load(Ordering::Relaxed),
            sc.hedges_launched.load(Ordering::Relaxed),
            sc.hedges_won.load(Ordering::Relaxed),
            sc.probes.load(Ordering::Relaxed),
            sc.rejoins.load(Ordering::Relaxed),
            worker_state.join(","),
            !missing.is_empty(),
            missing_json.join(","),
            rollup[0],
            rollup[1],
            rollup[2],
            rollup[3],
            rollup[4],
            rollup[5],
            rollup[6],
            rollup[7],
            rollup[8],
            rollup[9],
            sc.delta_pushes.load(Ordering::Relaxed),
        );
        Response::Ok {
            meta: extend_json(&base, &extra),
            body: String::new(),
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.core.stop_probe.store(true, Ordering::SeqCst);
        if let Some(h) = self
            .probe_handle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
    }
}

/// The background health loop: sleep the interval (observing the stop
/// flag at [`GATHER_POLL`] granularity so shutdown is prompt), then
/// probe every down worker.
fn probe_loop(core: &Arc<ShardCore>, interval: Duration) {
    let stopped = || core.stop_probe.load(Ordering::SeqCst) || core.service.is_shutting_down();
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stopped() {
                return;
            }
            let chunk = GATHER_POLL.min(interval - slept);
            std::thread::sleep(chunk);
            slept += chunk;
        }
        if stopped() {
            return;
        }
        probe_cycle(core);
    }
}

/// One probe pass: for every worker with an open breaker, dial a fresh
/// strictly-timed connection, ping, re-`sync` every fragment the worker
/// hosts (fingerprint-verified), and only on full success close the
/// breaker. The probe connection is dropped at the end of the attempt —
/// probes never accumulate against the worker's connection cap.
fn probe_cycle(core: &Arc<ShardCore>) {
    let n = core.slots.len();
    for w in 0..n {
        if !core.is_down(w) {
            continue;
        }
        core.counters.probes.fetch_add(1, Ordering::Relaxed);
        if probe_worker(core, w).is_ok() {
            // Drop any stale pooled session so the next scatter dials
            // the recovered process fresh.
            core.drop_session(w);
            core.note_success(w);
            core.counters.rejoins.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Probe one down worker: alive check + full fragment re-sync. Any
/// failure leaves the breaker open for the next cycle.
fn probe_worker(core: &Arc<ShardCore>, w: usize) -> Result<()> {
    let n = core.slots.len();
    let config = core.probe_config();
    let connector = Arc::clone(&core.connector.read().unwrap_or_else(|e| e.into_inner()));
    let mut client = connector(&core.slots[w].addr, &config)?;
    // Any *typed* response proves the process is alive and parsing —
    // but only an ok ping is worth re-syncing through (an overloaded
    // worker sheds this connection right after answering).
    match client.ping()? {
        Response::Ok { .. } => {}
        Response::Err { kind, detail } => {
            return Err(ServerError::Eval(format!(
                "probe ping refused ({kind}): {detail}"
            )))
        }
    }
    let (db, fp) = core.service.snapshot();
    let (frags, fps) = core.fragments(&db, fp);
    for f in worker_fragments(w, n, core.replicas) {
        let rels: Vec<String> = frags[f].iter().map(render_tsv).collect();
        match client.sync(f, fps[f], rels)? {
            Response::Ok { .. } => {}
            Response::Err { kind, detail } => {
                return Err(ServerError::Eval(format!(
                    "rejoin sync of fragment {f} refused ({kind}): {detail}"
                )))
            }
        }
    }
    Ok(())
}

impl RequestHandler for Coordinator {
    fn service(&self) -> &Arc<FlockService> {
        &self.core.service
    }

    fn handle_light(&self, req: &Request) -> Response {
        match req {
            Request::Load { .. } | Request::Gen { .. } => {
                // Mutate the master first (also clears the coordinator
                // caches), then re-push the partitioned catalog. A
                // failed push is a typed, retryable error: replaying
                // the mutation is safe (`load`/`gen` replace by name).
                let resp = self.core.service.handle_light(req);
                if resp.is_ok() {
                    if let Err(e) = self.push_catalog() {
                        return Response::from_error(&e);
                    }
                }
                resp
            }
            Request::Stats => {
                self.core
                    .service
                    .counters
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                self.stats_with_shards()
            }
            Request::Shutdown => {
                self.core.stop_probe.store(true, Ordering::SeqCst);
                // The workers exist to serve this coordinator: drain
                // them too (best effort — a down worker is already
                // out, and dialing it would just stall the drain).
                for k in 0..self.core.slots.len() {
                    if self.core.is_down(k) {
                        continue;
                    }
                    let _ = self.core.with_client(k, |c| c.shutdown());
                }
                self.core.service.handle_light(req)
            }
            other => self.core.service.handle_light(other),
        }
    }

    fn handle_admitted(&self, job: &Job, granted_threads: usize) -> Response {
        match &job.payload {
            JobPayload::Flock { text, support } => self.eval_flock_request(
                text,
                *support,
                &job.limits,
                granted_threads,
                job.deadline,
                Some(&job.cancel),
            ),
            // A coordinator can serve frag-less `partial` itself (it
            // holds the full catalog — a superset of any fragment),
            // which keeps the protocol uniform for nested topologies
            // and tests.
            JobPayload::Partial {
                text,
                scratch,
                frag,
            } => self.core.service.handle_partial_admitted(
                text,
                scratch,
                *frag,
                &job.limits,
                granted_threads,
                job.deadline,
                Some(&job.cancel),
            ),
            JobPayload::Append { rel, tsv, frag } => self.mutate_and_push(rel, tsv, *frag, false),
            JobPayload::Retract { rel, tsv, frag } => self.mutate_and_push(rel, tsv, *frag, true),
        }
    }
}

/// Predicates a step's query mentions — used to ship exactly the
/// upstream step outputs the shard will scan.
fn referenced_preds(step: &FilterStep) -> BTreeSet<&str> {
    step.query
        .rules()
        .iter()
        .flat_map(|r| r.body.iter())
        .filter_map(|l| l.atom().map(|a| a.pred.as_str()))
        .collect()
}

/// Project the aggregate column away from a thresholded scored
/// relation, yielding the step's output relation (named and columned
/// like the single-node executor would).
fn project_step_output(survivors: &Relation, step: &FilterStep) -> Relation {
    let arity = survivors.schema().arity();
    let cols: Vec<usize> = (0..arity.saturating_sub(1)).collect();
    let tuples: Vec<Tuple> = survivors.iter().map(|t| t.project(&cols)).collect();
    let columns: Vec<String> = step.params.iter().map(|p| p.to_string()).collect();
    Relation::from_tuples(Schema::from_columns(step.output.clone(), columns), tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Probes dial fail-fast with a *strict* I/O timeout: even when the
    /// scatter client is configured with no I/O timeout at all, a probe
    /// must never hold a worker connection under an unbounded read —
    /// and it takes no transparent retries (the probe loop is the
    /// retry).
    #[test]
    fn probe_config_is_fail_fast_and_strictly_timed() {
        let coord = Coordinator::new(
            ServerConfig::default(),
            ShardConfig {
                addrs: vec!["127.0.0.1:9".to_string()],
                client: ClientConfig {
                    retries: 7,
                    io_timeout: None,
                    ..ClientConfig::default()
                },
                probe_interval_ms: 0,
                ..ShardConfig::default()
            },
            Database::new(),
        );
        let probe = coord.core.probe_config();
        assert_eq!(probe.retries, 0, "probe must not transparently retry");
        assert!(
            probe.io_timeout.is_some(),
            "probe I/O must be strictly timed even when the scatter client is unbounded"
        );
        assert!(probe.connect_timeout <= Duration::from_secs(2));
    }

    /// Replica clamping and the health state machine: `fails` under the
    /// threshold is `suspect`, at the threshold the breaker opens, a
    /// success closes it.
    #[test]
    fn health_state_machine_transitions() {
        let coord = Coordinator::new(
            ServerConfig::default(),
            ShardConfig {
                addrs: vec!["127.0.0.1:9".to_string(), "127.0.0.1:10".to_string()],
                replicas: 99, // clamped to n
                fail_threshold: 2,
                probe_interval_ms: 0,
                ..ShardConfig::default()
            },
            Database::new(),
        );
        assert_eq!(coord.core.replicas, 2);
        assert_eq!(coord.worker_state(0), WorkerState::Up);
        coord.core.note_failure(0);
        assert_eq!(coord.worker_state(0), WorkerState::Suspect);
        coord.core.note_failure(0);
        assert_eq!(coord.worker_state(0), WorkerState::Down);
        coord.core.note_success(0);
        assert_eq!(coord.worker_state(0), WorkerState::Up);
        coord.core.force_down(1);
        assert_eq!(coord.worker_state(1), WorkerState::Down);
    }
}
