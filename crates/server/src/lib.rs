//! `qf-server`: a resident query-flock service.
//!
//! Local `qfsh` runs pay three costs on every flock: catalog load,
//! plan search, and evaluation. A *resident* service amortizes all
//! three across requests and clients:
//!
//! - **Shared catalog** — relations load once and live behind a
//!   `RwLock`; every connection evaluates against the same data.
//! - **Admission control** — per-request budgets map onto the
//!   execution governor ([`qf_core::ExecContext`]); a bounded queue
//!   feeds a fixed worker pool, and overload is a typed, immediate
//!   [`Overloaded`](ServerError::Overloaded) rejection instead of an
//!   invisible backlog. Pool threads are divided fairly among the
//!   requests running at once.
//! - **Result cache with monotone reuse** — scored evaluations
//!   (`(params…, agg)` rows) are cached under the *canonical* program
//!   text + catalog fingerprint; a cached run at support `s` answers
//!   any request at `s' ≥ s` (any filter the baseline
//!   [subsumes](qf_core::FilterCondition::subsumes)) by re-filtering,
//!   bitwise identically to a cold evaluation. Searched plan shapes
//!   are cached separately, so even non-subsumed thresholds skip the
//!   plan search.
//!
//! The transport is a deliberately small length-framed request/response
//! protocol over TCP ([`frame`], [`protocol`]) built on `std::net` —
//! no external dependencies. `qfsh serve` and `qfsh client` wrap
//! [`Server`] and [`Client`].

pub mod cache;
pub mod client;
pub mod error;
pub mod frame;
pub mod net;
pub mod pool;
pub mod protocol;
pub mod report;
pub mod service;
pub mod shard;
pub mod transport;

pub use cache::{CacheKey, CachedResult, PlanCache, ResultCache};
pub use client::{Client, ClientConfig, ClientStats, TransportFactory};
pub use error::{Result, ServerError};
pub use net::Server;
pub use pool::{Job, JobPayload, WorkerPool};
pub use protocol::{Request, RequestLimits, Response};
pub use report::{json_escape, json_report, CacheReport};
pub use service::{Counters, FlockService, LocalHandler, RequestHandler, ServerConfig};
pub use shard::{Coordinator, ShardConfig, ShardConnector, ShardCounters, WorkerState};
pub use transport::{ChaosNet, NetChaos, NetFault, NetOp, Transport};
