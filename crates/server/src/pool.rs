//! Admission control: a bounded job queue feeding a fixed worker pool.
//!
//! Admitted requests do real work — joins, aggregation, possibly a plan
//! search — so they never run on connection threads. A connection
//! submits a [`Job`] and blocks on its private reply channel; workers
//! drain the queue. The queue is **bounded**: when it is full the
//! submit fails immediately with a typed [`ServerError::Overloaded`]
//! instead of building an invisible backlog (the client can back off;
//! an unbounded queue just converts overload into latency and memory).
//!
//! The pool is generic over a [`RequestHandler`]: the standalone server
//! hands jobs straight to the [`FlockService`], while the shard
//! coordinator substitutes its scatter-gather handler — admission,
//! queueing, triage, and fair thread allocation are identical in both
//! deployments.
//!
//! Shutdown is graceful by construction: closing the queue rejects new
//! submissions with [`ServerError::ShuttingDown`] but workers keep
//! draining the jobs already admitted, so every accepted request gets
//! its response before the pool exits.
//!
//! [`FlockService`]: crate::service::FlockService

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qf_core::CancelToken;

use crate::error::{Result, ServerError};
use crate::protocol::{RequestLimits, Response};
use crate::service::RequestHandler;

/// The work an admitted job carries — the heavy request kinds.
pub enum JobPayload {
    /// A full flock evaluation (`flock`).
    Flock {
        /// Flock program text.
        text: String,
        /// Optional support-threshold override.
        support: Option<i64>,
    },
    /// One scatter-gather step against this shard's fragment
    /// (`partial`).
    Partial {
        /// Mini-flock program text at a vacuous threshold.
        text: String,
        /// Scratch relations (TSV) to overlay on the catalog snapshot.
        scratch: Vec<String>,
        /// Fragment scope: `(fragment id, expected fingerprint)` for a
        /// replica-hosted fragment, `None` for whole-catalog partials.
        frag: Option<(usize, u64)>,
    },
    /// A streaming catalog delta (`append`): union the TSV tuples into
    /// an existing relation through the write-ahead log. Admitted (not
    /// light-path) because the merge re-sorts the whole relation and
    /// the WAL commit fsyncs — both too heavy for a connection thread.
    Append {
        /// Target relation name (cross-checked against the TSV header).
        rel: String,
        /// The delta as full TSV content including the header line.
        tsv: String,
        /// Fragment scope: `(fragment id, expected post-delta
        /// fingerprint)` routes the delta into the worker's fragment
        /// store; `None` mutates the master catalog.
        frag: Option<(usize, u64)>,
    },
    /// A streaming catalog retraction (`retract`): subtract the TSV
    /// tuples from an existing relation through the write-ahead log.
    /// Admitted for the same reason as `append` — the set difference
    /// rewrites the relation and the WAL commit fsyncs.
    Retract {
        /// Target relation name (cross-checked against the TSV header).
        rel: String,
        /// The delta as full TSV content including the header line.
        tsv: String,
        /// Fragment scope, as in [`JobPayload::Append`].
        frag: Option<(usize, u64)>,
    },
}

/// One admitted request, carrying its reply channel, its
/// admission-stamped deadline, and the cancellation token shared with
/// its connection thread.
pub struct Job {
    /// What to evaluate.
    pub payload: JobPayload,
    /// Per-request budgets.
    pub limits: RequestLimits,
    /// Absolute deadline stamped at admission: queue wait counts
    /// against it, and a job whose deadline expires while queued is
    /// rejected typed without executing.
    pub deadline: Option<Instant>,
    /// The effective budget behind `deadline`, for the error message.
    pub budget_ms: u64,
    /// Tripped by the connection thread when the client hangs up; the
    /// governor checks it cooperatively mid-plan.
    pub cancel: CancelToken,
    /// Where the worker sends the response. A dropped receiver (client
    /// hung up) just makes the send a no-op.
    pub reply: mpsc::Sender<Response>,
}

impl Job {
    /// A flock job with no deadline and a fresh token (direct/test
    /// callers).
    pub fn new(
        text: String,
        support: Option<i64>,
        limits: RequestLimits,
        reply: mpsc::Sender<Response>,
    ) -> Job {
        Job {
            payload: JobPayload::Flock { text, support },
            limits,
            deadline: None,
            budget_ms: 0,
            cancel: CancelToken::new(),
            reply,
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

struct PoolInner {
    handler: Arc<dyn RequestHandler>,
    state: Mutex<QueueState>,
    cond: Condvar,
    cap: usize,
    workers: usize,
}

/// Handle to the admission queue; cheap to clone into connection
/// threads.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl WorkerPool {
    /// Spawn `config.threads` workers over a queue bounded at
    /// `config.queue_cap` (both from the handler's service). Returns
    /// the pool handle and the worker join handles (owned by the server
    /// for shutdown).
    pub fn spawn(handler: Arc<dyn RequestHandler>) -> (WorkerPool, Vec<JoinHandle<()>>) {
        let config = &handler.service().config;
        let workers = config.threads.max(1);
        let cap = config.queue_cap.max(1);
        let inner = Arc::new(PoolInner {
            cap,
            handler,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            cond: Condvar::new(),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qf-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        (WorkerPool { inner }, handles)
    }

    /// Admit a job or reject it immediately. Errors are typed:
    /// [`ServerError::ShuttingDown`] once the queue is closed,
    /// [`ServerError::Overloaded`] when the bounded queue is full (the
    /// latter counts toward the server's `rejected` total).
    pub fn submit(&self, job: Job) -> Result<()> {
        let service = self.inner.handler.service();
        let counters = &service.counters;
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.open {
            return Err(ServerError::ShuttingDown {
                retry_after_ms: service.config.retry_after_ms,
            });
        }
        if state.jobs.len() >= self.inner.cap {
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServerError::Overloaded {
                queue_depth: state.jobs.len(),
                capacity: self.inner.cap,
            });
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len() as u64;
        counters.queue_depth.store(depth, Ordering::Relaxed);
        counters.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
        drop(state);
        self.inner.cond.notify_one();
        Ok(())
    }

    /// Close the queue: new submissions fail with `ShuttingDown`, but
    /// already-admitted jobs are still drained by the workers.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.open = false;
        drop(state);
        self.inner.cond.notify_all();
    }

    /// Current queued-job count (tests and `stats`).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }
}

fn worker_loop(inner: &PoolInner) {
    let service = Arc::clone(inner.handler.service());
    let counters = &service.counters;
    counters.live_workers.fetch_add(1, Ordering::Relaxed);
    loop {
        let job = {
            let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    counters
                        .queue_depth
                        .store(state.jobs.len() as u64, Ordering::Relaxed);
                    break Some(job);
                }
                if !state.open {
                    break None;
                }
                state = inner.cond.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { break };
        // Pre-execution triage: a job whose client already hung up, or
        // whose deadline expired while it sat in the queue, is answered
        // typed without consuming a worker's evaluation time.
        if job.cancel.is_cancelled() {
            service.note_cancelled();
            let _ = job
                .reply
                .send(Response::from_error(&ServerError::Cancelled));
            continue;
        }
        if let Some(d) = job.deadline {
            if Instant::now() >= d {
                service.note_timeout();
                let _ = job.reply.send(Response::from_error(&ServerError::Timeout {
                    stage: "queue",
                    budget_ms: job.budget_ms,
                }));
                continue;
            }
        }
        // Fair allocation: the pool's threads are divided among the
        // requests executing right now, never below one.
        let active = counters.active.fetch_add(1, Ordering::SeqCst) + 1;
        let fair = (inner.workers / active.max(1)).max(1);
        let response = inner.handler.handle_admitted(&job, fair);
        counters.active.fetch_sub(1, Ordering::SeqCst);
        let _ = job.reply.send(response);
    }
    counters.live_workers.fetch_sub(1, Ordering::Relaxed);
}
