//! The chaos matrix: a retrying client talking to a real server through
//! a seed-driven fault-injecting transport.
//!
//! For every seed, every request must either complete with bytes
//! identical to a cold evaluation, or fail with a typed retryable error
//! (a transport-level `io`/`proto` failure after the retry budget) —
//! never a hang, never a garbage answer. With a reasonable retry
//! budget the client converges on every request: stalls are absorbed by
//! I/O timeouts, resets by reconnects, and bit flips by the `QFN2`
//! checksum plus a resend.
//!
//! Seeds come from `QF_NET_CHAOS_SEEDS` (comma-separated) so CI can pin
//! a matrix; the default list keeps local runs fast.

use std::time::Duration;

use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};
use qf_server::service::render_tsv;
use qf_server::{
    Client, ClientConfig, NetChaos, NetFault, NetOp, Request, RequestLimits, Response, Server,
    ServerConfig, ServerError, Transport,
};
use qf_storage::{Database, Relation, Schema, Value};

fn demo_db(rows: usize) -> Database {
    let tuples: Vec<Vec<Value>> = (0..rows as i64)
        .map(|a| vec![Value::int(a), Value::int(a % 7)])
        .collect();
    let mut db = Database::new();
    db.insert(Relation::from_rows(Schema::new("r", &["a", "b"]), tuples));
    db
}

fn flock_text(support: i64) -> String {
    format!("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= {support}")
}

fn seeds() -> Vec<u64> {
    match std::env::var("QF_NET_CHAOS_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 23, 37, 41, 59],
    }
}

/// Dial the server and wrap the fresh socket in the shared chaos
/// stream: every reconnect keeps drawing from the same deterministic
/// fault sequence.
fn chaos_factory(addr: String, chaos: NetChaos) -> qf_server::TransportFactory {
    Box::new(move || {
        let stream =
            std::net::TcpStream::connect(&addr).map_err(|e| ServerError::Io(e.to_string()))?;
        let mut t: Box<dyn Transport> = Box::new(chaos.wrap(Box::new(stream)));
        t.set_read_timeout(Some(Duration::from_secs(2)))
            .map_err(|e| ServerError::Io(e.to_string()))?;
        t.set_write_timeout(Some(Duration::from_secs(2)))
            .map_err(|e| ServerError::Io(e.to_string()))?;
        Ok(t)
    })
}

fn chaos_client(addr: &str, chaos: &NetChaos, seed: u64) -> Client {
    let config = ClientConfig {
        retries: 40,
        io_timeout: Some(Duration::from_secs(2)),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(40),
        jitter_seed: seed,
        ..Default::default()
    };
    Client::connect_via(chaos_factory(addr.to_string(), chaos.clone()), config)
        .expect("first dial is fault-free only if the stream says so — retried below")
}

/// Acceptance criterion: over every seed in the matrix, every request
/// through the chaos transport either returns cold-eval-identical bytes
/// or a typed retryable failure — and with this retry budget, they all
/// converge.
#[test]
fn chaos_matrix_every_request_converges_or_fails_typed() {
    let db = demo_db(64);
    // Expected bytes per support threshold, computed offline.
    let expected: Vec<(i64, String)> = (1..=5)
        .map(|s| {
            let flock = QueryFlock::parse(&flock_text(s)).unwrap();
            let cold =
                render_tsv(&evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap());
            (s, cold)
        })
        .collect();

    for seed in seeds() {
        let server = Server::serve(
            ServerConfig {
                // Server-side stalls must not reap mid-request chaos
                // stalls (max 125 ms) but must still bound a dead peer.
                io_timeout_ms: 2_000,
                idle_timeout_ms: 30_000,
                ..Default::default()
            },
            db.clone(),
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = server.addr().to_string();

        let chaos = NetChaos::seeded(seed, 8);
        let mut client = chaos_client(&addr, &chaos, seed);

        let mut converged = 0usize;
        for (support, cold) in &expected {
            // Two passes per threshold: the second usually lands in the
            // result cache, exercising retries over both paths.
            for round in 0..2 {
                match client.flock(&flock_text(*support), None, RequestLimits::default()) {
                    Ok(Response::Ok { body, .. }) => {
                        assert_eq!(
                            &body, cold,
                            "seed {seed} support {support} round {round}: wrong bytes"
                        );
                        converged += 1;
                    }
                    Ok(Response::Err { kind, detail }) => {
                        // Out of retry budget on a typed failure: it
                        // must at least be a retryable class, never a
                        // wrong answer dressed as an error.
                        assert!(
                            ServerError::retryable_kind(&kind),
                            "seed {seed}: non-retryable terminal error {kind}: {detail}"
                        );
                    }
                    Err(e) => {
                        // Transport-level failure after the budget:
                        // typed io/proto, acceptable terminal state.
                        let kind = e.kind();
                        assert!(
                            kind == "io" || kind == "proto",
                            "seed {seed}: unexpected transport error {kind}: {e}"
                        );
                    }
                }
            }
        }
        assert!(
            converged >= expected.len(),
            "seed {seed}: only {converged} requests converged \
             (retries {}, reconnects {}, faults {:?})",
            client.session_stats().retries,
            client.session_stats().reconnects,
            chaos.injection_log(),
        );
        server.shutdown();
        server.join();
    }
}

/// Pinned-fault determinism: a reset on the very first request write
/// forces exactly one reconnect, and the retry succeeds — observable in
/// the client's own counters.
#[test]
fn pinned_reset_forces_one_reconnect_and_converges() {
    let server = Server::serve(ServerConfig::default(), demo_db(16), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    let chaos = NetChaos::quiet().with_fault(NetOp::Write, 1, NetFault::Reset);
    let mut client = chaos_client(&addr, &chaos, 7);
    let resp = client
        .flock(&flock_text(1), None, RequestLimits::default())
        .unwrap();
    assert!(resp.is_ok(), "{resp:?}");
    let stats = client.session_stats();
    assert!(stats.retries >= 1, "no retry recorded: {stats:?}");
    assert!(stats.reconnects >= 1, "no reconnect recorded: {stats:?}");
    assert_eq!(chaos.injection_log(), vec![(NetOp::Write, NetFault::Reset)]);
    server.shutdown();
    server.join();
}

/// A mutation (`load`) is NOT replayed after an ambiguous transport
/// failure: the error surfaces instead of risking a double-apply.
#[test]
fn mutations_are_not_retried_after_ambiguous_failures() {
    let server = Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // The reset fires on the 2nd write op — mid-request, after bytes
    // may have reached the server: ambiguous.
    let chaos = NetChaos::quiet().with_fault(NetOp::Write, 2, NetFault::Reset);
    let mut client = chaos_client(&addr, &chaos, 7);
    let err = client.load("r\ta\n1\n").unwrap_err();
    assert_eq!(err.kind(), "io", "{err}");
    assert_eq!(
        client.session_stats().retries,
        0,
        "a mutation must not be retried on an ambiguous failure"
    );

    // The same failure on an idempotent request IS retried through.
    let chaos = NetChaos::quiet().with_fault(NetOp::Write, 2, NetFault::Reset);
    let mut client = chaos_client(&addr, &chaos, 7);
    assert!(client.ping().unwrap().is_ok());
    assert!(client.session_stats().retries >= 1);
    server.shutdown();
    server.join();
}

/// A bit flip on the request wire surfaces server-side as a typed
/// `proto` response (checksum verified before parse), which certifies
/// non-execution — so even a mutation retries through it.
#[test]
fn request_bit_flip_certifies_non_execution_and_retries_through() {
    let server = Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // Flip a bit in the 3rd write op: the payload chunk of frame #1.
    let chaos = NetChaos::quiet().with_fault(NetOp::Write, 3, NetFault::BitFlip);
    let mut client = chaos_client(&addr, &chaos, 7);
    let resp = client.load("r\ta\n1\n2\n").unwrap();
    assert!(resp.is_ok(), "{resp:?}");
    assert!(client.session_stats().retries >= 1);

    // Exactly one relation with exactly two tuples: no double-apply.
    let (_meta, _) = match client.request(&Request::Stats).unwrap() {
        Response::Ok { meta, body } => {
            assert!(meta.contains("\"relations\":1"), "{meta}");
            assert!(meta.contains("\"tuples\":2"), "{meta}");
            (meta, body)
        }
        Response::Err { kind, detail } => panic!("stats failed: {kind}: {detail}"),
    };
    server.shutdown();
    server.join();
}
