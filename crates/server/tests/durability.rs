//! Durability integration tests: the `append` delta verb is equivalent
//! to bulk loading, and a WAL-backed service recovers its exact catalog
//! (same fingerprint, byte-identical flock answers) across restarts.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use qf_server::{Client, FlockService, Request, RequestLimits, Response, Server, ServerConfig};
use qf_storage::{real_fs, Database, Wal, WalOptions};

fn ok_parts(resp: Response) -> (String, String) {
    match resp {
        Response::Ok { meta, body } => (meta, body),
        Response::Err { kind, detail } => panic!("unexpected err {kind}: {detail}"),
    }
}

fn err_kind(resp: Response) -> String {
    match resp {
        Response::Err { kind, .. } => kind,
        Response::Ok { meta, .. } => panic!("unexpected ok: {meta}"),
    }
}

/// Extract the catalog fingerprint `"fp":"<16 hex>"` from a meta line.
fn fp_of(meta: &str) -> String {
    let at = meta
        .find("\"fp\":\"")
        .unwrap_or_else(|| panic!("no fp in {meta}"))
        + "\"fp\":\"".len();
    meta[at..at + 16].to_string()
}

fn flock_text(agg: &str, support: i64) -> String {
    format!("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\n{agg}(answer.B) >= {support}")
}

const HEADER: &str = "r\ta\tb\n";

fn rows_tsv(rows: &[(i64, i64)]) -> String {
    let mut out = String::from(HEADER);
    for &(a, b) in rows {
        out.push_str(&format!("{a}\t{b}\n"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite acceptance property: a sequence of `append` deltas is
    /// observationally identical to one bulk `load` of the concatenated
    /// TSV — same catalog fingerprint, and byte-identical flock bodies
    /// across all four aggregates (COUNT / SUM / MIN / MAX). Deltas may
    /// overlap the initial load and each other: set semantics make the
    /// union order-insensitive.
    #[test]
    fn append_sequence_equals_bulk_load(
        initial in prop::collection::vec((0i64..8, 0i64..8), 0..24),
        deltas in prop::collection::vec(
            prop::collection::vec((0i64..8, 0i64..8), 0..8), 1..4),
        support in 1i64..4,
    ) {
        let limits = RequestLimits::default();
        let everything: Vec<(i64, i64)> = initial
            .iter()
            .chain(deltas.iter().flatten())
            .copied()
            .collect();

        let bulk = FlockService::new(ServerConfig::default(), Database::new());
        let (bulk_meta, _) = ok_parts(bulk.handle_light(&Request::Load {
            tsv: rows_tsv(&everything),
        }));

        let inc = FlockService::new(ServerConfig::default(), Database::new());
        let (mut inc_fp, _) = {
            let (m, b) = ok_parts(inc.handle_light(&Request::Load {
                tsv: rows_tsv(&initial),
            }));
            (fp_of(&m), b)
        };
        for delta in &deltas {
            let (meta, _) = ok_parts(inc.handle_append_admitted("r", &rows_tsv(delta), None));
            inc_fp = fp_of(&meta);
        }
        prop_assert_eq!(&inc_fp, &fp_of(&bulk_meta), "post-mutation fingerprints diverge");

        for agg in ["COUNT", "SUM", "MIN", "MAX"] {
            let text = flock_text(agg, support);
            let (_, body_bulk) = ok_parts(bulk.handle_flock(&text, None, &limits, 1));
            let (_, body_inc) = ok_parts(inc.handle_flock(&text, None, &limits, 1));
            prop_assert_eq!(&body_inc, &body_bulk, "{} answers diverge", agg);
        }
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qf-durab-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_durable(dir: &Path) -> FlockService {
    let (wal, db) = Wal::open(real_fs(), dir, WalOptions::default()).unwrap();
    FlockService::with_wal(ServerConfig::default(), db, wal)
}

/// Restarting on the same data dir recovers the exact acknowledged
/// catalog: same fingerprint, byte-identical flock answers, and the
/// recovery counters surface in `stats`.
#[test]
fn restart_recovers_identical_catalog_and_answers() {
    let dir = tmp("restart");
    let limits = RequestLimits::default();
    let text = flock_text("COUNT", 2);

    let svc = open_durable(&dir);
    ok_parts(svc.handle_light(&Request::Load {
        tsv: rows_tsv(&[(1, 1), (2, 1), (3, 1), (1, 2)]),
    }));
    let (meta, _) = ok_parts(svc.handle_append_admitted("r", &rows_tsv(&[(2, 2), (3, 2)]), None));
    let fp_before = fp_of(&meta);
    let (_, body_before) = ok_parts(svc.handle_flock(&text, None, &limits, 1));
    drop(svc); // releases the PID lock and closes the log

    let svc2 = open_durable(&dir);
    let stats = svc2.stats_json();
    assert_eq!(fp_of(&stats), fp_before, "recovered fingerprint: {stats}");
    assert!(
        !stats.contains("\"recovered_records\":0,"),
        "replay must count recovered records: {stats}"
    );
    let (_, body_after) = ok_parts(svc2.handle_flock(&text, None, &limits, 1));
    assert_eq!(body_after, body_before, "recovered answers diverge");

    drop(svc2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A data dir locked by a live foreign process is refused; one locked
/// by a dead owner is reclaimed. (The lock is reentrant within a single
/// process, so foreign ownership is simulated by stamping the file.)
#[test]
fn live_data_dir_is_exclusive() {
    let dir = tmp("lock");
    drop(open_durable(&dir)); // create the dir and a first history

    // PID 1 is always alive on the platforms this test runs on.
    std::fs::write(dir.join("wal.lock"), b"1").unwrap();
    let Err(err) = Wal::open(real_fs(), &dir, WalOptions::default()) else {
        panic!("a dir locked by a live foreign process must be refused");
    };
    assert!(
        err.to_string().contains("locked by running process"),
        "{err}"
    );

    // A dead owner's lock is reclaimed and the open succeeds.
    std::fs::write(dir.join("wal.lock"), b"4294000000").unwrap();
    drop(open_durable(&dir));
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end `append` over TCP: mutation metas carry the catalog
/// fingerprint, the delta lands in subsequent flock answers, and a
/// header/verb relation mismatch is a typed proto error.
#[test]
fn append_over_tcp_updates_answers_and_reports_fp() {
    let server = Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let (meta, _) = ok_parts(client.load("r\ta\tb\n1\t1\n2\t1\n").unwrap());
    assert!(meta.contains("\"fp\":\""), "load meta carries fp: {meta}");
    let load_fp = fp_of(&meta);

    // One duplicate and one genuinely new tuple: set semantics.
    let (meta, body) = ok_parts(client.append("r", "r\ta\tb\n2\t1\n3\t1\n").unwrap());
    assert!(meta.contains("\"added\":1"), "{meta}");
    assert!(meta.contains("\"tuples\":3"), "{meta}");
    assert_ne!(fp_of(&meta), load_fp, "append must change the fingerprint");
    assert!(body.contains("appended 1 new tuple(s)"), "{body}");

    let text = flock_text("COUNT", 3);
    let (_, answer) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(
        answer.contains('1'),
        "delta visible to flock eval: {answer}"
    );

    let mismatch = client.append("r", "s\ta\tb\n9\t9\n").unwrap();
    assert_eq!(err_kind(mismatch), "proto");

    assert!(client.shutdown().unwrap().is_ok());
    server.shutdown();
}
