//! Service-level tests (no sockets): cache equivalence, monotone
//! reuse, budget admission, and catalog invalidation.

use proptest::prelude::*;

use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};
use qf_server::service::render_tsv;
use qf_server::{FlockService, Request, RequestLimits, Response, ServerConfig};
use qf_storage::{Database, Relation, Schema, Value};

fn small_db(rows: &[(i64, i64)]) -> Database {
    let tuples: Vec<Vec<Value>> = rows
        .iter()
        .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
        .collect();
    let mut db = Database::new();
    db.insert(Relation::from_rows(Schema::new("r", &["a", "b"]), tuples));
    db
}

/// `answer(B) :- r(B,$1)`: one parameter `$1`, supported by the count
/// of distinct `B` values seen with it.
fn flock_text(support: i64) -> String {
    format!("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= {support}")
}

fn ok_parts(resp: Response) -> (String, String) {
    match resp {
        Response::Ok { meta, body } => (meta, body),
        Response::Err { kind, detail } => panic!("unexpected err {kind}: {detail}"),
    }
}

fn err_kind(resp: Response) -> String {
    match resp {
        Response::Err { kind, .. } => kind,
        Response::Ok { meta, .. } => panic!("unexpected ok: {meta}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: a cached answer is bitwise identical to
    /// a cold evaluation — for the same request, and (monotone reuse)
    /// for any tightened threshold served from the same entry.
    #[test]
    fn cache_hit_equals_cold_eval(
        rows in proptest::collection::vec((0i64..6, 0i64..6), 0..40),
        support in 1i64..4,
        delta in 0i64..3,
    ) {
        let db = small_db(&rows);
        let text = flock_text(support);
        let flock = QueryFlock::parse(&text).unwrap();
        let cold = render_tsv(
            &evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap(),
        );
        let svc = FlockService::new(ServerConfig::default(), db.clone());
        let limits = RequestLimits::default();

        let (m1, b1) = ok_parts(svc.handle_flock(&text, None, &limits, 2));
        prop_assert!(m1.contains("\"cache_hit\":false"), "first run must miss: {m1}");
        prop_assert_eq!(&b1, &cold);

        let (m2, b2) = ok_parts(svc.handle_flock(&text, None, &limits, 2));
        prop_assert!(m2.contains("\"cache_hit\":true"), "repeat must hit: {m2}");
        prop_assert!(m2.contains("\"strategy\":\"cache\""));
        prop_assert_eq!(&b2, &cold);

        // Monotone reuse: a tightened threshold (s' >= s) is answered
        // from the same scored entry, identical to its own cold run.
        let tightened = support + delta;
        let (m3, b3) = ok_parts(svc.handle_flock(&text, Some(tightened), &limits, 2));
        prop_assert!(m3.contains("\"cache_hit\":true"), "tightened must hit: {m3}");
        let flock2 = QueryFlock::parse(&flock_text(tightened)).unwrap();
        let cold2 = render_tsv(
            &evaluate_direct(&flock2, &db, JoinOrderStrategy::Greedy).unwrap(),
        );
        prop_assert_eq!(&b3, &cold2);
    }
}

#[test]
fn loosened_threshold_misses_and_reevaluates() {
    let db = small_db(&[(1, 1), (2, 1), (3, 1), (1, 2), (2, 2)]);
    let svc = FlockService::new(ServerConfig::default(), db.clone());
    let limits = RequestLimits::default();
    let text = flock_text(3);
    ok_parts(svc.handle_flock(&text, None, &limits, 1));
    // support 2 is looser than the cached baseline 3: must re-evaluate
    // (a hit would silently drop answers), but the plan shape is
    // reused so the plan search is still skipped.
    let (meta, body) = ok_parts(svc.handle_flock(&text, Some(2), &limits, 1));
    assert!(meta.contains("\"cache_hit\":false"), "{meta}");
    assert!(meta.contains("\"plan_cached\":true"), "{meta}");
    let flock = QueryFlock::parse(&flock_text(2)).unwrap();
    let cold = render_tsv(&evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap());
    assert_eq!(body, cold);
}

#[test]
fn over_cap_request_is_rejected_with_budget_error() {
    let config = ServerConfig {
        max_rows: Some(1_000),
        ..Default::default()
    };
    let svc = FlockService::new(config, small_db(&[(1, 1)]));
    let limits = RequestLimits {
        max_rows: Some(1_000_000),
        ..Default::default()
    };
    let resp = svc.handle_flock(&flock_text(1), None, &limits, 1);
    assert_eq!(err_kind(resp), "budget");
}

#[test]
fn exhausted_governor_budget_is_a_typed_budget_error() {
    let svc = FlockService::new(
        ServerConfig::default(),
        small_db(&[(1, 1), (2, 1), (3, 2), (4, 2), (5, 3)]),
    );
    let limits = RequestLimits {
        max_rows: Some(1),
        ..Default::default()
    };
    let resp = svc.handle_flock(&flock_text(1), None, &limits, 1);
    assert_eq!(err_kind(resp), "budget");
}

#[test]
fn catalog_mutation_invalidates_the_cache() {
    let svc = FlockService::new(ServerConfig::default(), small_db(&[(1, 1), (2, 1)]));
    let limits = RequestLimits::default();
    let text = flock_text(1);
    ok_parts(svc.handle_flock(&text, None, &limits, 1));
    let (meta, _) = ok_parts(svc.handle_flock(&text, None, &limits, 1));
    assert!(meta.contains("\"cache_hit\":true"), "{meta}");

    // Replacing `r` changes the catalog fingerprint: the same program
    // must re-evaluate against the new data.
    let load = Request::Load {
        tsv: "r\ta\tb\n7\t1\n8\t1\n9\t1\n".to_string(),
    };
    assert!(svc.handle_light(&load).is_ok());
    let (meta, body) = ok_parts(svc.handle_flock(&text, None, &limits, 1));
    assert!(meta.contains("\"cache_hit\":false"), "{meta}");
    assert!(body.contains('1'), "result reflects the reloaded catalog");
}

#[test]
fn sum_over_different_head_columns_does_not_cross_hit() {
    // Both programs canonicalize to the same query text — they differ
    // only in which head column `SUM(answer.W)` reads (position 1 of
    // answer(B,W) vs position 0 of answer(W,Z)). A cache comparing the
    // aggregate by raw variable name would serve the first program's
    // sums for the second, semantically different, request.
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("r", &["a", "b", "c"]),
        vec![
            vec![Value::int(1), Value::int(100), Value::int(7)],
            vec![Value::int(2), Value::int(100), Value::int(7)],
        ],
    ));
    let svc = FlockService::new(ServerConfig::default(), db);
    let limits = RequestLimits::default();
    let sum_col_b = "QUERY:\nanswer(B,W) :- r(B,W,$p)\nFILTER:\nSUM(answer.W) >= 10";
    let (_, body_b) = ok_parts(svc.handle_flock(sum_col_b, None, &limits, 1));
    assert!(body_b.contains('7'), "SUM over column b is 200: {body_b}");

    // Renaming the aggregate variable *along with* the query is pure
    // spelling — same column, must hit with identical bytes.
    let sum_col_b2 = "QUERY:\nanswer(X,Y) :- r(X,Y,$p)\nFILTER:\nSUM(answer.Y) >= 10";
    let (meta_b2, body_b2) = ok_parts(svc.handle_flock(sum_col_b2, None, &limits, 1));
    assert!(meta_b2.contains("\"cache_hit\":true"), "{meta_b2}");
    assert_eq!(body_b2, body_b);

    // Same raw variable name, different column: must MISS and return
    // the true (empty) answer — SUM over column a is 1+2 = 3 < 10.
    let sum_col_a = "QUERY:\nanswer(W,Z) :- r(W,Z,$p)\nFILTER:\nSUM(answer.W) >= 10";
    let (meta_a, body_a) = ok_parts(svc.handle_flock(sum_col_a, None, &limits, 1));
    assert!(meta_a.contains("\"cache_hit\":false"), "{meta_a}");
    assert!(!body_a.contains('7'), "SUM over column a is 3: {body_a}");
}

#[test]
fn fingerprint_is_syntax_insensitive() {
    let svc = FlockService::new(ServerConfig::default(), Database::new());
    let a = Request::Fingerprint {
        text: "QUERY:\nanswer(B) :- r(B,$1) AND s(B,$2)\nFILTER:\nCOUNT(answer.B) >= 2".to_string(),
    };
    // Same query up to ordinary-variable names and subgoal order.
    // Parameter names survive canonicalization on purpose: they label
    // the result columns, so renaming them changes observable output.
    let b = Request::Fingerprint {
        text: "QUERY:\nanswer(X) :- s(X,$2) AND r(X,$1)\nFILTER:\nCOUNT(answer.X) >= 2".to_string(),
    };
    let (meta_a, canon_a) = ok_parts(svc.handle_light(&a));
    let (meta_b, canon_b) = ok_parts(svc.handle_light(&b));
    assert_eq!(meta_a, meta_b);
    assert_eq!(canon_a, canon_b);
    assert!(meta_a.contains("\"fingerprint\":\""), "{meta_a}");
}

#[test]
fn stats_surface_cache_and_admission_counters() {
    let svc = FlockService::new(ServerConfig::default(), small_db(&[(1, 1), (2, 1)]));
    let limits = RequestLimits::default();
    let text = flock_text(1);
    ok_parts(svc.handle_flock(&text, None, &limits, 1));
    ok_parts(svc.handle_flock(&text, None, &limits, 1));
    let (stats, _) = ok_parts(svc.handle_light(&Request::Stats));
    for key in [
        "\"requests\":",
        "\"cache_hits\":1",
        "\"cache_misses\":1",
        "\"rejected\":0",
        "\"queue_depth_max\":",
        "\"relations\":1",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }
}
