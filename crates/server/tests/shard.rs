//! Scatter-gather integration tests: a real coordinator fronting real
//! `qf-server` workers over TCP. Acceptance criteria from the shard
//! work: 2-shard runs are bitwise-identical to single-node evaluation,
//! a killed worker is recovered by local re-scatter, per-shard counters
//! roll up under distinct `shard_*` stats fields (never summed into the
//! coordinator's own), and the coordinator→shard path survives the
//! chaos transport with pinned seeds.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};
use qf_server::report::json_u64;
use qf_server::service::render_tsv;
use qf_server::{
    Client, ClientConfig, Coordinator, NetChaos, RequestLimits, Response, Server, ServerConfig,
    ServerError, ShardConfig, ShardConnector, Transport,
};
use qf_storage::{Database, Relation, Schema, Value};

/// `baskets(bid, item)` with non-numeric item symbols (the TSV wire
/// path parses digit-like symbols as integers) and enough pair
/// structure for the support threshold to bite.
fn demo_db(baskets: i64) -> Database {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for b in 0..baskets {
        rows.push(vec![Value::int(b), Value::str("ale")]);
        if b % 2 == 0 {
            rows.push(vec![Value::int(b), Value::str("brie")]);
        }
        if b % 3 == 0 {
            rows.push(vec![Value::int(b), Value::str("cod")]);
        }
    }
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        rows,
    ));
    db
}

/// The fig. 5 shape: frequent item pairs, shardable on the basket id.
fn pair_flock(support: i64) -> String {
    format!(
        "QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\n\
         FILTER:\nCOUNT(answer.B) >= {support}"
    )
}

fn expected_body(text: &str, db: &Database) -> String {
    let flock = QueryFlock::parse(text).unwrap();
    render_tsv(&evaluate_direct(&flock, db, JoinOrderStrategy::Greedy).unwrap())
}

fn ok_parts(resp: Response) -> (String, String) {
    match resp {
        Response::Ok { meta, body } => (meta, body),
        Response::Err { kind, detail } => panic!("unexpected err {kind}: {detail}"),
    }
}

/// Spin up `n` empty workers plus a coordinator over them, and load
/// `db` through the coordinator (which partitions and pushes).
fn cluster(n: usize, db: &Database) -> (Vec<Server>, Server, Client) {
    let workers: Vec<Server> = (0..n)
        .map(|_| Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap())
        .collect();
    let shard = ShardConfig {
        addrs: workers.iter().map(|w| w.addr().to_string()).collect(),
        replicated: BTreeSet::new(),
        ..ShardConfig::default()
    };
    let coord = Server::serve_handler(
        Arc::new(Coordinator::new(
            ServerConfig::default(),
            shard,
            Database::new(),
        )),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(&coord.addr().to_string()).unwrap();
    for rel in db.iter() {
        assert!(client.load(&render_tsv(rel)).unwrap().is_ok());
    }
    (workers, coord, client)
}

#[test]
fn two_shard_run_matches_single_node_bitwise() {
    let db = demo_db(12);
    let (workers, coord, mut client) = cluster(2, &db);

    // Shardable flock: scatter-gather, bitwise-identical result.
    let text = pair_flock(2);
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":true"), "{meta}");
    assert!(meta.contains("\"shards\":2"), "{meta}");
    assert_eq!(body, expected_body(&text, &db));

    // A tightened threshold of the same query is answered from the
    // coordinator-tier cache (single-step runs cache the vacuous
    // baseline), still bitwise-identical.
    let (meta, body) = ok_parts(
        client
            .flock(&text, Some(4), RequestLimits::default())
            .unwrap(),
    );
    assert!(meta.contains("\"strategy\":\"shard-cache\""), "{meta}");
    let tight = pair_flock(4);
    assert_eq!(body, expected_body(&tight, &db));

    // A non-shardable flock (head var is not the subgoals' first
    // argument) falls back to local evaluation on the master catalog.
    let local = "QUERY:\nanswer(I) :- baskets(B,I)\nFILTER:\nCOUNT(answer.I) >= 3";
    let (meta, body) = ok_parts(client.flock(local, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":false"), "{meta}");
    assert_eq!(body, expected_body(local, &db));

    drop(client);
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
}

#[test]
fn dead_worker_is_recovered_by_rescatter() {
    let db = demo_db(10);
    let (mut workers, coord, mut client) = cluster(2, &db);

    // Kill worker 1 *before* the first flock: the scatter hits a dead
    // shard cold and must converge by re-deriving that fragment from
    // the master catalog.
    let victim = workers.pop().unwrap();
    victim.shutdown();
    victim.join();

    let text = pair_flock(2);
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":true"), "{meta}");
    let rescatters = json_u64(&meta, "rescatters").unwrap_or(0);
    assert!(rescatters >= 1, "no re-scatter recorded: {meta}");
    assert_eq!(body, expected_body(&text, &db));

    drop(client);
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
}

#[test]
fn shard_counters_roll_up_in_distinct_fields() {
    let db = demo_db(8);
    let (workers, coord, mut client) = cluster(2, &db);

    let text = pair_flock(2);
    assert!(client
        .flock(&text, None, RequestLimits::default())
        .unwrap()
        .is_ok());
    // Same query again: a coordinator-tier cache hit, no scatter.
    assert!(client
        .flock(&text, None, RequestLimits::default())
        .unwrap()
        .is_ok());

    let (stats, _) = ok_parts(client.stats().unwrap());
    assert_eq!(json_u64(&stats, "shards"), Some(2), "{stats}");
    assert_eq!(json_u64(&stats, "shards_live"), Some(2), "{stats}");
    assert!(json_u64(&stats, "scatters").unwrap() >= 2, "{stats}");
    assert_eq!(json_u64(&stats, "sharded_runs"), Some(1), "{stats}");
    assert_eq!(json_u64(&stats, "rescatters"), Some(0), "{stats}");

    // The rollup is the satellite-3 regression: worker-side activity
    // appears ONLY under shard_* keys. The coordinator's own cache saw
    // exactly one miss (first flock) and one hit (second); the workers'
    // partial-cache traffic must not inflate those fields.
    assert_eq!(json_u64(&stats, "cache_hits"), Some(1), "{stats}");
    assert_eq!(json_u64(&stats, "cache_misses"), Some(1), "{stats}");
    assert!(json_u64(&stats, "shard_requests").unwrap() >= 2, "{stats}");
    assert_eq!(json_u64(&stats, "shard_timeouts"), Some(0), "{stats}");
    assert_eq!(json_u64(&stats, "shard_cancelled"), Some(0), "{stats}");
    // Workers evaluated at least one partial each, all cold.
    assert!(
        json_u64(&stats, "shard_cache_misses").unwrap() >= 1,
        "{stats}"
    );

    drop(client);
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
}

/// Wrap every coordinator→shard dial in the seeded chaos transport.
fn chaos_connector(chaos: NetChaos) -> ShardConnector {
    Arc::new(move |addr: &str, config: &ClientConfig| {
        let addr = addr.to_string();
        let chaos = chaos.clone();
        let factory: qf_server::TransportFactory = Box::new(move || {
            let stream =
                std::net::TcpStream::connect(&addr).map_err(|e| ServerError::Io(e.to_string()))?;
            let mut t: Box<dyn Transport> = Box::new(chaos.wrap(Box::new(stream)));
            t.set_read_timeout(Some(Duration::from_secs(2)))
                .map_err(|e| ServerError::Io(e.to_string()))?;
            t.set_write_timeout(Some(Duration::from_secs(2)))
                .map_err(|e| ServerError::Io(e.to_string()))?;
            Ok(t)
        });
        Client::connect_via(factory, config.clone())
    })
}

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("QF_NET_CHAOS_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 23, 37],
    }
}

/// Chaos on the coordinator→shard wire: every run must either produce
/// single-node-identical bytes (retries and local re-scatter both heal
/// dead sessions) or a typed retryable error — never a wrong answer.
#[test]
fn chaos_between_tiers_converges_or_fails_typed() {
    let db = demo_db(10);
    let text = pair_flock(2);
    let expected = expected_body(&text, &db);

    for seed in chaos_seeds() {
        let workers: Vec<Server> = (0..2)
            .map(|_| {
                Server::serve(
                    ServerConfig {
                        io_timeout_ms: 2_000,
                        ..Default::default()
                    },
                    Database::new(),
                    "127.0.0.1:0",
                )
                .unwrap()
            })
            .collect();
        let shard = ShardConfig {
            addrs: workers.iter().map(|w| w.addr().to_string()).collect(),
            replicated: BTreeSet::new(),
            client: ClientConfig {
                retries: 10,
                io_timeout: Some(Duration::from_secs(2)),
                backoff_base: Duration::from_millis(2),
                backoff_cap: Duration::from_millis(40),
                jitter_seed: seed,
                ..ClientConfig::default()
            },
        };
        let chaos = NetChaos::seeded(seed, 8);
        let coordinator = Coordinator::new(ServerConfig::default(), shard, Database::new())
            .with_connector(chaos_connector(chaos));
        let coord = Server::serve_handler(Arc::new(coordinator), "127.0.0.1:0").unwrap();

        // The coordinator-facing client is fault-free; only the
        // coordinator→shard tier sees chaos. It still retries typed
        // retryable responses (a failed catalog push is `shard-lost`).
        let mut client = Client::connect_with(
            &coord.addr().to_string(),
            ClientConfig {
                retries: 10,
                backoff_base: Duration::from_millis(5),
                backoff_cap: Duration::from_millis(100),
                ..ClientConfig::default()
            },
        )
        .unwrap();

        let mut loaded = true;
        for rel in db.iter() {
            match client.load(&render_tsv(rel)).unwrap() {
                Response::Ok { .. } => {}
                Response::Err { kind, detail } => {
                    assert!(
                        ServerError::retryable_kind(&kind),
                        "seed {seed}: load failed non-retryably: {kind}: {detail}"
                    );
                    loaded = false;
                }
            }
        }
        if loaded {
            match client.flock(&text, None, RequestLimits::default()).unwrap() {
                Response::Ok { body, .. } => {
                    assert_eq!(body, expected, "seed {seed}: wrong bytes through chaos");
                }
                Response::Err { kind, detail } => {
                    assert!(
                        ServerError::retryable_kind(&kind),
                        "seed {seed}: non-retryable terminal error {kind}: {detail}"
                    );
                }
            }
        }

        drop(client);
        for w in workers {
            w.shutdown();
            w.join();
        }
        coord.shutdown();
        coord.join();
    }
}
