//! Scatter-gather integration tests: a real coordinator fronting real
//! `qf-server` workers over TCP. Acceptance criteria from the shard
//! work: 2-shard runs are bitwise-identical to single-node evaluation,
//! a killed worker is recovered by local re-scatter, per-shard counters
//! roll up under distinct `shard_*` stats fields (never summed into the
//! coordinator's own), and the coordinator→shard path survives the
//! chaos transport with pinned seeds.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};
use qf_server::report::json_u64;
use qf_server::service::render_tsv;
use qf_server::{
    Client, ClientConfig, Coordinator, NetChaos, RequestLimits, Response, Server, ServerConfig,
    ServerError, ShardConfig, ShardConnector, Transport, WorkerState,
};
use qf_storage::{Database, Relation, Schema, Value};

/// `baskets(bid, item)` with non-numeric item symbols (the TSV wire
/// path parses digit-like symbols as integers) and enough pair
/// structure for the support threshold to bite.
fn demo_db(baskets: i64) -> Database {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for b in 0..baskets {
        rows.push(vec![Value::int(b), Value::str("ale")]);
        if b % 2 == 0 {
            rows.push(vec![Value::int(b), Value::str("brie")]);
        }
        if b % 3 == 0 {
            rows.push(vec![Value::int(b), Value::str("cod")]);
        }
    }
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        rows,
    ));
    db
}

/// The fig. 5 shape: frequent item pairs, shardable on the basket id.
fn pair_flock(support: i64) -> String {
    format!(
        "QUERY:\nanswer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\n\
         FILTER:\nCOUNT(answer.B) >= {support}"
    )
}

fn expected_body(text: &str, db: &Database) -> String {
    let flock = QueryFlock::parse(text).unwrap();
    render_tsv(&evaluate_direct(&flock, db, JoinOrderStrategy::Greedy).unwrap())
}

fn ok_parts(resp: Response) -> (String, String) {
    match resp {
        Response::Ok { meta, body } => (meta, body),
        Response::Err { kind, detail } => panic!("unexpected err {kind}: {detail}"),
    }
}

/// Spin up `n` empty workers plus a coordinator over them, and load
/// `db` through the coordinator (which partitions and pushes).
fn cluster(n: usize, db: &Database) -> (Vec<Server>, Server, Client) {
    let workers: Vec<Server> = (0..n)
        .map(|_| Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap())
        .collect();
    let shard = ShardConfig {
        addrs: workers.iter().map(|w| w.addr().to_string()).collect(),
        replicated: BTreeSet::new(),
        ..ShardConfig::default()
    };
    let coord = Server::serve_handler(
        Arc::new(Coordinator::new(
            ServerConfig::default(),
            shard,
            Database::new(),
        )),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(&coord.addr().to_string()).unwrap();
    for rel in db.iter() {
        assert!(client.load(&render_tsv(rel)).unwrap().is_ok());
    }
    (workers, coord, client)
}

#[test]
fn two_shard_run_matches_single_node_bitwise() {
    let db = demo_db(12);
    let (workers, coord, mut client) = cluster(2, &db);

    // Shardable flock: scatter-gather, bitwise-identical result.
    let text = pair_flock(2);
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":true"), "{meta}");
    assert!(meta.contains("\"shards\":2"), "{meta}");
    assert_eq!(body, expected_body(&text, &db));

    // A tightened threshold of the same query is answered from the
    // coordinator-tier cache (single-step runs cache the vacuous
    // baseline), still bitwise-identical.
    let (meta, body) = ok_parts(
        client
            .flock(&text, Some(4), RequestLimits::default())
            .unwrap(),
    );
    assert!(meta.contains("\"strategy\":\"shard-cache\""), "{meta}");
    let tight = pair_flock(4);
    assert_eq!(body, expected_body(&tight, &db));

    // A non-shardable flock (head var is not the subgoals' first
    // argument) falls back to local evaluation on the master catalog.
    let local = "QUERY:\nanswer(I) :- baskets(B,I)\nFILTER:\nCOUNT(answer.I) >= 3";
    let (meta, body) = ok_parts(client.flock(local, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":false"), "{meta}");
    assert_eq!(body, expected_body(local, &db));

    drop(client);
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
}

#[test]
fn dead_worker_is_recovered_by_rescatter() {
    let db = demo_db(10);
    let (mut workers, coord, mut client) = cluster(2, &db);

    // Kill worker 1 *before* the first flock: the scatter hits a dead
    // shard cold and must converge by re-deriving that fragment from
    // the master catalog.
    let victim = workers.pop().unwrap();
    victim.shutdown();
    victim.join();

    let text = pair_flock(2);
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":true"), "{meta}");
    let rescatters = json_u64(&meta, "rescatters").unwrap_or(0);
    assert!(rescatters >= 1, "no re-scatter recorded: {meta}");
    assert_eq!(body, expected_body(&text, &db));

    drop(client);
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
}

#[test]
fn shard_counters_roll_up_in_distinct_fields() {
    let db = demo_db(8);
    let (workers, coord, mut client) = cluster(2, &db);

    let text = pair_flock(2);
    assert!(client
        .flock(&text, None, RequestLimits::default())
        .unwrap()
        .is_ok());
    // Same query again: a coordinator-tier cache hit, no scatter.
    assert!(client
        .flock(&text, None, RequestLimits::default())
        .unwrap()
        .is_ok());

    let (stats, _) = ok_parts(client.stats().unwrap());
    assert_eq!(json_u64(&stats, "shards"), Some(2), "{stats}");
    assert_eq!(json_u64(&stats, "shards_live"), Some(2), "{stats}");
    assert!(json_u64(&stats, "scatters").unwrap() >= 2, "{stats}");
    assert_eq!(json_u64(&stats, "sharded_runs"), Some(1), "{stats}");
    assert_eq!(json_u64(&stats, "rescatters"), Some(0), "{stats}");

    // The rollup is the satellite-3 regression: worker-side activity
    // appears ONLY under shard_* keys. The coordinator's own cache saw
    // exactly one miss (first flock) and one hit (second); the workers'
    // partial-cache traffic must not inflate those fields.
    assert_eq!(json_u64(&stats, "cache_hits"), Some(1), "{stats}");
    assert_eq!(json_u64(&stats, "cache_misses"), Some(1), "{stats}");
    assert!(json_u64(&stats, "shard_requests").unwrap() >= 2, "{stats}");
    assert_eq!(json_u64(&stats, "shard_timeouts"), Some(0), "{stats}");
    assert_eq!(json_u64(&stats, "shard_cancelled"), Some(0), "{stats}");
    // Workers evaluated at least one partial each, all cold.
    assert!(
        json_u64(&stats, "shard_cache_misses").unwrap() >= 1,
        "{stats}"
    );

    drop(client);
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
}

/// Wrap every coordinator→shard dial in the seeded chaos transport.
fn chaos_connector(chaos: NetChaos) -> ShardConnector {
    Arc::new(move |addr: &str, config: &ClientConfig| {
        let addr = addr.to_string();
        let chaos = chaos.clone();
        let factory: qf_server::TransportFactory = Box::new(move || {
            let stream =
                std::net::TcpStream::connect(&addr).map_err(|e| ServerError::Io(e.to_string()))?;
            let mut t: Box<dyn Transport> = Box::new(chaos.wrap(Box::new(stream)));
            t.set_read_timeout(Some(Duration::from_secs(2)))
                .map_err(|e| ServerError::Io(e.to_string()))?;
            t.set_write_timeout(Some(Duration::from_secs(2)))
                .map_err(|e| ServerError::Io(e.to_string()))?;
            Ok(t)
        });
        Client::connect_via(factory, config.clone())
    })
}

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("QF_NET_CHAOS_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 23, 37],
    }
}

/// Chaos on the coordinator→shard wire: every run must either produce
/// single-node-identical bytes (retries and local re-scatter both heal
/// dead sessions) or a typed retryable error — never a wrong answer.
#[test]
fn chaos_between_tiers_converges_or_fails_typed() {
    let db = demo_db(10);
    let text = pair_flock(2);
    let expected = expected_body(&text, &db);

    for seed in chaos_seeds() {
        let workers: Vec<Server> = (0..2)
            .map(|_| {
                Server::serve(
                    ServerConfig {
                        io_timeout_ms: 2_000,
                        ..Default::default()
                    },
                    Database::new(),
                    "127.0.0.1:0",
                )
                .unwrap()
            })
            .collect();
        let shard = ShardConfig {
            addrs: workers.iter().map(|w| w.addr().to_string()).collect(),
            replicated: BTreeSet::new(),
            client: ClientConfig {
                retries: 10,
                io_timeout: Some(Duration::from_secs(2)),
                backoff_base: Duration::from_millis(2),
                backoff_cap: Duration::from_millis(40),
                jitter_seed: seed,
                ..ClientConfig::default()
            },
            ..ShardConfig::default()
        };
        let chaos = NetChaos::seeded(seed, 8);
        let coordinator = Coordinator::new(ServerConfig::default(), shard, Database::new())
            .with_connector(chaos_connector(chaos));
        let coord = Server::serve_handler(Arc::new(coordinator), "127.0.0.1:0").unwrap();

        // The coordinator-facing client is fault-free; only the
        // coordinator→shard tier sees chaos. It still retries typed
        // retryable responses (a failed catalog push is `shard-lost`).
        let mut client = Client::connect_with(
            &coord.addr().to_string(),
            ClientConfig {
                retries: 10,
                backoff_base: Duration::from_millis(5),
                backoff_cap: Duration::from_millis(100),
                ..ClientConfig::default()
            },
        )
        .unwrap();

        let mut loaded = true;
        for rel in db.iter() {
            match client.load(&render_tsv(rel)).unwrap() {
                Response::Ok { .. } => {}
                Response::Err { kind, detail } => {
                    assert!(
                        ServerError::retryable_kind(&kind),
                        "seed {seed}: load failed non-retryably: {kind}: {detail}"
                    );
                    loaded = false;
                }
            }
        }
        if loaded {
            match client.flock(&text, None, RequestLimits::default()).unwrap() {
                Response::Ok { body, .. } => {
                    assert_eq!(body, expected, "seed {seed}: wrong bytes through chaos");
                }
                Response::Err { kind, detail } => {
                    assert!(
                        ServerError::retryable_kind(&kind),
                        "seed {seed}: non-retryable terminal error {kind}: {detail}"
                    );
                }
            }
        }

        drop(client);
        for w in workers {
            w.shutdown();
            w.join();
        }
        coord.shutdown();
        coord.join();
    }
}

/// Like [`cluster`], but replicated (`--replicas 2`) and with a handle
/// on the [`Coordinator`] itself so tests can read the health registry
/// and drive probe cycles synchronously (`probe_interval_ms` is zero —
/// no background thread races the asserts). `fail_threshold` is 1 so a
/// single kill opens the breaker deterministically.
fn replica_cluster(
    n: usize,
    db: &Database,
    worker_config: &ServerConfig,
    tune: impl FnOnce(ShardConfig) -> ShardConfig,
) -> (Vec<Server>, Server, Arc<Coordinator>, Client) {
    let workers: Vec<Server> = (0..n)
        .map(|_| Server::serve(worker_config.clone(), Database::new(), "127.0.0.1:0").unwrap())
        .collect();
    let shard = tune(ShardConfig {
        addrs: workers.iter().map(|w| w.addr().to_string()).collect(),
        replicas: 2,
        fail_threshold: 1,
        probe_interval_ms: 0,
        ..ShardConfig::default()
    });
    let coordinator = Arc::new(Coordinator::new(
        ServerConfig::default(),
        shard,
        Database::new(),
    ));
    let coord = Server::serve_handler(coordinator.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(&coord.addr().to_string()).unwrap();
    for rel in db.iter() {
        assert!(client.load(&render_tsv(rel)).unwrap().is_ok());
    }
    (workers, coord, coordinator, client)
}

/// The tentpole acceptance: at `--replicas 2`, killing a worker is
/// absorbed by failover to the surviving replica — bitwise-identical
/// bytes, `failovers >= 1`, and **zero** rescatters (the PR-7 local
/// re-derivation stays cold because a live replica holds the fragment).
#[test]
fn replica_failover_serves_without_rescatter() {
    let db = demo_db(12);
    let (mut workers, coord, coordinator, mut client) =
        replica_cluster(2, &db, &ServerConfig::default(), |s| s);

    let victim = workers.pop().unwrap();
    let victim_addr = victim.addr().to_string();
    victim.shutdown();
    victim.join();

    let text = pair_flock(2);
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":true"), "{meta}");
    assert!(json_u64(&meta, "failovers").unwrap() >= 1, "{meta}");
    assert_eq!(json_u64(&meta, "rescatters"), Some(0), "{meta}");
    assert_eq!(body, expected_body(&text, &db));

    // The breaker opened (fail_threshold = 1) and stats tell the whole
    // story: the dead worker is named as missing from the rollup, with
    // the partial-rollup flag raised — "unknown", not "zero".
    assert_eq!(coordinator.worker_state(1), WorkerState::Down);
    let (stats, _) = ok_parts(client.stats().unwrap());
    assert_eq!(json_u64(&stats, "replicas"), Some(2), "{stats}");
    assert!(json_u64(&stats, "failovers").unwrap() >= 1, "{stats}");
    assert_eq!(json_u64(&stats, "rescatters"), Some(0), "{stats}");
    assert!(
        stats.contains("\"worker_state\":[\"up\",\"down\"]"),
        "{stats}"
    );
    assert!(stats.contains("\"shard_stats_partial\":true"), "{stats}");
    assert!(stats.contains(&victim_addr), "{stats}");

    drop(client);
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
}

/// The rejoin path: a restarted worker (same port, empty catalog) stays
/// `down` until a probe re-syncs its fragments and closes the breaker;
/// the next scatter then uses it as primary again — no failover, no
/// rescatter, no coordinator restart.
#[test]
fn probe_resyncs_restarted_worker_and_scatters_to_it() {
    let db = demo_db(10);
    let (mut workers, coord, coordinator, mut client) =
        replica_cluster(2, &db, &ServerConfig::default(), |s| s);

    let victim = workers.pop().unwrap();
    let victim_addr = victim.addr().to_string();
    victim.shutdown();
    victim.join();

    // Failover keeps serving while the worker is gone, and opens the
    // breaker.
    let text = pair_flock(2);
    let (_, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert_eq!(body, expected_body(&text, &db));
    assert_eq!(coordinator.worker_state(1), WorkerState::Down);

    // Restart on the same port with an EMPTY catalog: the process is
    // back but cannot serve its fragments yet, and the registry keeps
    // it down until a probe proves otherwise.
    let reborn = Server::serve(ServerConfig::default(), Database::new(), &victim_addr).unwrap();
    assert_eq!(coordinator.worker_state(1), WorkerState::Down);

    coordinator.probe_now();
    assert_eq!(coordinator.worker_state(1), WorkerState::Up);
    let counters = coordinator.shard_counters();
    assert!(counters.probes.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    assert!(counters.rejoins.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    // The probe shipped both fragments worker 1 hosts (its primary and
    // its replica of fragment 0), fingerprint-verified.
    let mut direct = Client::connect(&victim_addr).unwrap();
    let (wstats, _) = ok_parts(direct.stats().unwrap());
    assert_eq!(json_u64(&wstats, "frags"), Some(2), "{wstats}");
    drop(direct);

    // A mutation clears the coordinator caches; the following flock
    // scatters cold — and lands on the rejoined worker as primary:
    // zero failovers and zero rescatters prove it served its fragment.
    let rel = db.iter().next().unwrap();
    assert!(client.load(&render_tsv(rel)).unwrap().is_ok());
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":true"), "{meta}");
    assert_eq!(json_u64(&meta, "failovers"), Some(0), "{meta}");
    assert_eq!(json_u64(&meta, "rescatters"), Some(0), "{meta}");
    assert_eq!(body, expected_body(&text, &db));

    drop(client);
    reborn.shutdown();
    reborn.join();
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
}

/// A transport that sleeps before every write: a deterministic slow
/// worker for the hedging tests (no seeds, no clocks to race — the
/// delay dominates every margin by an order of magnitude).
struct StallStream {
    inner: TcpStream,
    delay: Duration,
}

impl Read for StallStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for StallStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::thread::sleep(self.delay);
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl Transport for StallStream {
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> std::io::Result<()> {
        Transport::set_read_timeout(&mut self.inner, dur)
    }

    fn set_write_timeout(&mut self, dur: Option<Duration>) -> std::io::Result<()> {
        Transport::set_write_timeout(&mut self.inner, dur)
    }

    fn peer_gone(&mut self) -> bool {
        Transport::peer_gone(&mut self.inner)
    }

    fn shutdown(&mut self) -> std::io::Result<()> {
        Transport::shutdown(&mut self.inner)
    }
}

/// Dial through a [`StallStream`] with a per-address write delay.
fn stall_connector(delays: Vec<(String, Duration)>) -> ShardConnector {
    Arc::new(move |addr: &str, config: &ClientConfig| {
        let delay = delays
            .iter()
            .find(|(a, _)| a == addr)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO);
        let addr = addr.to_string();
        let factory: qf_server::TransportFactory = Box::new(move || {
            let stream = TcpStream::connect(&addr).map_err(|e| ServerError::Io(e.to_string()))?;
            Ok(Box::new(StallStream {
                inner: stream,
                delay,
            }) as Box<dyn Transport>)
        });
        Client::connect_via(factory, config.clone())
    })
}

/// One hedged run: 2 workers at `--replicas 2`, `hedge_after` of 40 ms,
/// per-worker write stalls in milliseconds. Returns the flock meta and
/// body.
fn hedged_flock(db: &Database, stall0: u64, stall1: u64) -> (String, String) {
    let workers: Vec<Server> = (0..2)
        .map(|_| Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap())
        .collect();
    let delays: Vec<(String, Duration)> = workers
        .iter()
        .zip([stall0, stall1])
        .map(|(w, ms)| (w.addr().to_string(), Duration::from_millis(ms)))
        .collect();
    let shard = ShardConfig {
        addrs: workers.iter().map(|w| w.addr().to_string()).collect(),
        replicas: 2,
        // A stalled reply is slowness, not death: keep the breaker from
        // opening mid-test.
        fail_threshold: 100,
        probe_interval_ms: 0,
        hedge_after_ms: Some(40),
        ..ShardConfig::default()
    };
    let coordinator = Coordinator::new(ServerConfig::default(), shard, Database::new())
        .with_connector(stall_connector(delays));
    let coord = Server::serve_handler(Arc::new(coordinator), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(&coord.addr().to_string()).unwrap();
    for rel in db.iter() {
        assert!(client.load(&render_tsv(rel)).unwrap().is_ok());
    }
    let text = pair_flock(2);
    let out = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    drop(client);
    for w in workers {
        w.shutdown();
        w.join();
    }
    coord.shutdown();
    coord.join();
    out
}

/// Hedging cuts the slow-primary tail, and the *winner flips* with the
/// stall shape: a slow primary loses to the hedged replica, while a
/// uniformly slow fleet keeps the primary's head start — and the bytes
/// are identical either way (replicas hold identical fragments, so the
/// race can never change the answer).
#[test]
fn hedged_winner_flips_between_primary_and_replica() {
    let db = demo_db(10);
    let text = pair_flock(2);
    let expected = expected_body(&text, &db);

    // Worker 1 (fragment 1's primary) stalls 300 ms per write; worker 0
    // is instant. The 40 ms hedge fires and the replica wins the race.
    let (meta, body) = hedged_flock(&db, 0, 300);
    assert!(json_u64(&meta, "hedges_launched").unwrap() >= 1, "{meta}");
    assert!(json_u64(&meta, "hedges_won").unwrap() >= 1, "{meta}");
    assert_eq!(json_u64(&meta, "rescatters"), Some(0), "{meta}");
    assert_eq!(body, expected);

    // Both workers stall 250 ms per write: every primary blows the
    // hedge budget, but the hedge is just as slow and starts 40 ms
    // behind (then queues behind the primary RPC on the shared
    // session), so the primary wins every race it triggered.
    let (meta, body) = hedged_flock(&db, 250, 250);
    assert!(json_u64(&meta, "hedges_launched").unwrap() >= 1, "{meta}");
    assert_eq!(json_u64(&meta, "hedges_won"), Some(0), "{meta}");
    assert_eq!(body, expected);
}

/// Satellite 6: probe connections are opened fresh, used, and closed —
/// they must never accumulate against the worker's `--max-conns` cap.
/// With the cap at 2 (one slot for the coordinator's pooled session,
/// one spare), a leaky probe would trip `conn_rejected` on the worker
/// or shed the post-rejoin scatter.
#[test]
fn probe_connections_do_not_leak_against_conn_cap() {
    let db = demo_db(8);
    let worker_config = ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    };
    let (workers, coord, coordinator, mut client) =
        replica_cluster(1, &db, &worker_config, |s| ShardConfig { replicas: 1, ..s });
    let worker_addr = workers[0].addr().to_string();

    // Kill and restart the only worker: the first flock after the kill
    // is answered by local re-derivation and opens the breaker.
    let victim = workers.into_iter().next().unwrap();
    victim.shutdown();
    victim.join();
    let text = pair_flock(2);
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(json_u64(&meta, "rescatters").unwrap() >= 1, "{meta}");
    assert_eq!(body, expected_body(&text, &db));
    assert_eq!(coordinator.worker_state(0), WorkerState::Down);

    let reborn = Server::serve(worker_config, Database::new(), &worker_addr).unwrap();
    coordinator.probe_now();
    assert_eq!(coordinator.worker_state(0), WorkerState::Up);

    // Mutate (drops coordinator caches, re-pushes the catalog over the
    // pooled session) and scatter again: with the probe's connection
    // closed, the pooled session and one direct stats client fit the
    // cap of 2 with zero sheds.
    let rel = db.iter().next().unwrap();
    assert!(client.load(&render_tsv(rel)).unwrap().is_ok());
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert_eq!(json_u64(&meta, "rescatters"), Some(0), "{meta}");
    assert_eq!(body, expected_body(&text, &db));

    let mut direct = Client::connect(&worker_addr).unwrap();
    let (wstats, _) = ok_parts(direct.stats().unwrap());
    assert_eq!(json_u64(&wstats, "conn_rejected"), Some(0), "{wstats}");
    drop(direct);

    drop(client);
    reborn.shutdown();
    reborn.join();
    coord.shutdown();
    coord.join();
}
