//! Incremental-maintenance tests: the delta path's acceptance criteria.
//!
//! A warm query re-issued after an `append` batch is served through
//! the maintained cache entry (counters prove `delta_maintained > 0`,
//! `cache_hit:true` proves no recompute) bitwise-identical to a cold
//! evaluation; a MIN/MAX-affecting `retract` triggers the *bounded*
//! re-check instead of a cache wipe; and a property test drives random
//! interleavings of append/retract batches across every aggregate at 1
//! and 4 threads — plus the same ingest stream through a 2-shard
//! coordinator — comparing every answer against a from-scratch
//! recompute.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};
use qf_server::report::json_u64;
use qf_server::service::render_tsv;
use qf_server::{
    Client, Coordinator, FlockService, Request, RequestLimits, Response, Server, ServerConfig,
    ShardConfig,
};
use qf_storage::{Database, Relation, Schema, Value};

fn rel_of(rows: &[(i64, i64)]) -> Relation {
    let tuples: Vec<Vec<Value>> = rows
        .iter()
        .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
        .collect();
    Relation::from_rows(Schema::new("r", &["a", "b"]), tuples)
}

fn small_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.insert(rel_of(rows));
    db
}

fn rows_tsv(rows: &[(i64, i64)]) -> String {
    let mut out = "r\ta\tb\n".to_string();
    for (a, b) in rows {
        out.push_str(&format!("{a}\t{b}\n"));
    }
    out
}

/// `answer(B) :- r(B,$1)` under the given aggregate: groups are the
/// distinct `b` values, aggregated over each group's `a` values.
fn agg_flock(agg: &str, support: i64) -> String {
    format!("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\n{agg}(answer.B) >= {support}")
}

fn cold_body(text: &str, db: &Database) -> String {
    let flock = QueryFlock::parse(text).unwrap();
    render_tsv(&evaluate_direct(&flock, db, JoinOrderStrategy::Greedy).unwrap())
}

fn ok_parts(resp: Response) -> (String, String) {
    match resp {
        Response::Ok { meta, body } => (meta, body),
        Response::Err { kind, detail } => panic!("unexpected err {kind}: {detail}"),
    }
}

fn stat(svc: &FlockService, key: &str) -> u64 {
    let (meta, _) = ok_parts(svc.handle_light(&Request::Stats));
    json_u64(&meta, key).unwrap_or_else(|| panic!("missing {key} in {meta}"))
}

/// The headline acceptance test: warm the cache, append a batch, and
/// the re-issued query is answered **from the maintained entry** — a
/// cache hit (no recompute), counted by `delta_maintained`, and
/// bitwise-identical to a cold evaluation over the mutated catalog.
#[test]
fn warm_query_after_append_is_delta_maintained_and_exact() {
    let initial = [(1, 1), (2, 1), (3, 2), (1, 2)];
    let svc = FlockService::new(ServerConfig::default(), small_db(&initial));
    let limits = RequestLimits::default();
    let text = agg_flock("COUNT", 2);

    let (meta, _) = ok_parts(svc.handle_flock(&text, None, &limits, 1));
    assert!(meta.contains("\"cache_hit\":false"), "{meta}");

    let delta = [(4, 1), (4, 2), (5, 3)];
    let resp = svc.handle_append_admitted("r", &rows_tsv(&delta), None);
    let (meta, _) = ok_parts(resp);
    assert!(meta.contains("\"tuples\":7"), "{meta}");
    assert_eq!(stat(&svc, "delta_applied"), 1);
    assert_eq!(
        stat(&svc, "delta_maintained"),
        1,
        "entry must survive in place"
    );
    assert_eq!(stat(&svc, "delta_rebuilds"), 0, "no cache wipe allowed");

    // Mirror catalog: initial ∪ delta.
    let mut rows: Vec<(i64, i64)> = initial.to_vec();
    rows.extend_from_slice(&delta);
    let (meta, body) = ok_parts(svc.handle_flock(&text, None, &limits, 1));
    assert!(meta.contains("\"cache_hit\":true"), "served warm: {meta}");
    assert_eq!(body, cold_body(&text, &small_db(&rows)));

    // The maintained entry holds the *full* scored relation, so it now
    // answers every same-direction threshold — including ones looser
    // than the original request, which a cold-inserted entry cannot.
    let (meta, body) = ok_parts(svc.handle_flock(&text, Some(1), &limits, 1));
    assert!(meta.contains("\"cache_hit\":true"), "{meta}");
    assert_eq!(body, cold_body(&agg_flock("COUNT", 1), &small_db(&rows)));
}

/// A retract that removes a group's MAX witnesses beyond the bounded
/// re-check set forces a rescan of that group only — counted by
/// `recheck_tuples` — and the entry keeps serving exact answers.
#[test]
fn minmax_retract_triggers_bounded_recheck_not_cache_wipe() {
    // Group b=1 holds a = 1..=12 (deeper than the re-check bound of
    // 8); group b=2 is small ballast.
    let mut initial: Vec<(i64, i64)> = (1..=12).map(|a| (a, 1)).collect();
    initial.push((5, 2));
    let svc = FlockService::new(ServerConfig::default(), small_db(&initial));
    let limits = RequestLimits::default();
    let text = agg_flock("MAX", 4);

    ok_parts(svc.handle_flock(&text, None, &limits, 1));

    // Remove the 9 largest witnesses of group 1 in one batch: the
    // re-check set (top 8) drains while incomplete, so the view must
    // rescan group 1's live tuples.
    let gone: Vec<(i64, i64)> = (4..=12).map(|a| (a, 1)).collect();
    let resp = svc.handle_retract_admitted("r", &rows_tsv(&gone), None);
    let (meta, _) = ok_parts(resp);
    assert!(meta.contains("\"removed\":9"), "{meta}");
    assert_eq!(stat(&svc, "delta_maintained"), 1, "entry must survive");
    assert_eq!(stat(&svc, "delta_rebuilds"), 0, "no cache wipe allowed");
    assert!(
        stat(&svc, "recheck_tuples") > 0,
        "bounded re-check must fire"
    );

    let mut rows = initial.clone();
    rows.retain(|t| !gone.contains(t));
    // MAX of group 1 fell from 12 to 3: threshold 4 now excludes it.
    let (meta, body) = ok_parts(svc.handle_flock(&text, None, &limits, 1));
    assert!(meta.contains("\"cache_hit\":true"), "{meta}");
    assert_eq!(body, cold_body(&text, &small_db(&rows)));
    // The loosened threshold is served from the same maintained entry.
    let (meta, body) = ok_parts(svc.handle_flock(&text, Some(2), &limits, 1));
    assert!(meta.contains("\"cache_hit\":true"), "{meta}");
    assert_eq!(body, cold_body(&agg_flock("MAX", 2), &small_db(&rows)));
}

/// One interleaving step: apply the batch to the mirror rows under set
/// semantics, mutate the service, and check the re-issued query against
/// a cold recompute over the mirror.
fn apply_and_check(
    svc: &FlockService,
    threads: usize,
    text: &str,
    rows: &mut Vec<(i64, i64)>,
    batch: &[(i64, i64)],
    retract: bool,
) -> Result<(), TestCaseError> {
    let tsv = rows_tsv(batch);
    let resp = if retract {
        rows.retain(|t| !batch.contains(t));
        svc.handle_retract_admitted("r", &tsv, None)
    } else {
        for t in batch {
            if !rows.contains(t) {
                rows.push(*t);
            }
        }
        svc.handle_append_admitted("r", &tsv, None)
    };
    prop_assert!(resp.is_ok(), "mutation failed");
    let (_, body) = ok_parts(svc.handle_flock(text, None, &RequestLimits::default(), threads));
    prop_assert_eq!(body, cold_body(text, &small_db(rows)));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of append/retract batches across every
    /// aggregate: after each batch the (possibly delta-maintained)
    /// answer must be bitwise-equal to a from-scratch recompute, at 1
    /// and at 4 threads.
    #[test]
    fn interleaved_ingest_matches_cold_recompute(
        initial in proptest::collection::vec((0i64..6, 0i64..4), 0..24),
        ops in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec((0i64..6, 0i64..4), 1..8)),
            1..6,
        ),
        agg_pick in 0usize..4,
        support in 1i64..3,
    ) {
        let agg = ["COUNT", "SUM", "MIN", "MAX"][agg_pick];
        let text = agg_flock(agg, support);
        for threads in [1usize, 4] {
            let mut rows: Vec<(i64, i64)> = Vec::new();
            for t in &initial {
                if !rows.contains(t) {
                    rows.push(*t);
                }
            }
            let svc = FlockService::new(ServerConfig::default(), small_db(&rows));
            // Warm the cache so later batches exercise maintenance.
            ok_parts(svc.handle_flock(&text, None, &RequestLimits::default(), threads));
            for (retract, batch) in &ops {
                apply_and_check(&svc, threads, &text, &mut rows, batch, *retract)?;
            }
        }
    }
}

/// The same ingest stream through a real 2-shard coordinator fronting
/// real TCP workers: every append/retract ships only delta tuples to
/// the owning fragments (`delta_pushes` counts the cheap path), and
/// every re-issued query matches a single-node cold recompute.
#[test]
fn two_shard_ingest_stream_matches_cold_recompute() {
    let workers: Vec<Server> = (0..2)
        .map(|_| Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap())
        .collect();
    let shard = ShardConfig {
        addrs: workers.iter().map(|w| w.addr().to_string()).collect(),
        replicated: BTreeSet::new(),
        ..ShardConfig::default()
    };
    let coord = Server::serve_handler(
        Arc::new(Coordinator::new(
            ServerConfig::default(),
            shard,
            Database::new(),
        )),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(&coord.addr().to_string()).unwrap();

    let mut rows: Vec<(i64, i64)> = (0..10).map(|a| (a, a % 3)).collect();
    assert!(client.load(&rows_tsv(&rows)).unwrap().is_ok());
    let text = agg_flock("COUNT", 2);
    let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(meta.contains("\"sharded\":true"), "{meta}");
    assert_eq!(body, cold_body(&text, &small_db(&rows)));

    // A deterministic interleaving: two appends, two retracts, queries
    // between every batch.
    let batches: [(bool, Vec<(i64, i64)>); 4] = [
        (false, vec![(10, 0), (11, 1), (12, 2), (13, 0)]),
        (true, vec![(0, 0), (3, 0), (6, 0)]),
        (false, vec![(20, 1), (21, 1)]),
        (true, vec![(1, 1), (4, 1), (20, 1), (21, 1), (99, 3)]),
    ];
    for (retract, batch) in &batches {
        let tsv = rows_tsv(batch);
        let resp = if *retract {
            rows.retain(|t| !batch.contains(t));
            client.retract("r", &tsv).unwrap()
        } else {
            for t in batch {
                if !rows.contains(t) {
                    rows.push(*t);
                }
            }
            client.append("r", &tsv).unwrap()
        };
        assert!(resp.is_ok(), "mutation failed: {resp:?}");
        let (meta, body) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
        assert!(meta.contains("\"sharded\":true"), "{meta}");
        assert_eq!(body, cold_body(&text, &small_db(&rows)));
    }

    // The fleet was maintained by fragment deltas, not full re-syncs,
    // and the coordinator's stats surface both its own delta counters
    // and the per-worker rollup.
    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(
        json_u64(&stats, "delta_pushes").unwrap() >= 4,
        "every batch should take the delta path: {stats}"
    );
    assert!(json_u64(&stats, "delta_applied").unwrap() >= 4, "{stats}");
    for key in [
        "\"shard_delta_applied\":",
        "\"shard_delta_maintained\":",
        "\"shard_delta_rebuilds\":",
        "\"shard_recheck_tuples\":",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }

    drop(client);
    let mut c = Client::connect(&coord.addr().to_string()).unwrap();
    let _ = c.shutdown();
    coord.join();
    for w in workers {
        w.join();
    }
}
