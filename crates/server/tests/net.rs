//! TCP-level tests: framed sessions end to end, concurrent clients,
//! typed overload rejection, and graceful shutdown.

use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};
use qf_server::service::render_tsv;
use qf_server::{Client, RequestLimits, Response, Server, ServerConfig};
use qf_storage::{Database, Relation, Schema, Value};

fn demo_db(rows: usize) -> Database {
    // r(a, b): a in 0..rows, b = a % 7 — enough shape for support
    // thresholds to bite without being expensive.
    let tuples: Vec<Vec<Value>> = (0..rows as i64)
        .map(|a| vec![Value::int(a), Value::int(a % 7)])
        .collect();
    let mut db = Database::new();
    db.insert(Relation::from_rows(Schema::new("r", &["a", "b"]), tuples));
    db
}

fn flock_text(support: i64) -> String {
    format!("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= {support}")
}

fn ok_parts(resp: Response) -> (String, String) {
    match resp {
        Response::Ok { meta, body } => (meta, body),
        Response::Err { kind, detail } => panic!("unexpected err {kind}: {detail}"),
    }
}

/// The acceptance-criteria session: load, evaluate, repeat (cache hit,
/// identical bytes, no plan search), sweep a tightened threshold, read
/// stats, shut down gracefully.
#[test]
fn scripted_session_hits_cache_and_shuts_down() {
    let server = Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    assert!(client.ping().unwrap().is_ok());
    let tsv = "r\ta\tb\n1\t1\n2\t1\n3\t1\n1\t2\n2\t2\n";
    assert!(client.load(tsv).unwrap().is_ok());

    let text = flock_text(2);
    let (m1, b1) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(m1.contains("\"cache_hit\":false"), "{m1}");

    // Identical repeat: answered from cache, byte-identical result.
    let (m2, b2) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(m2.contains("\"cache_hit\":true"), "{m2}");
    assert!(m2.contains("\"strategy\":\"cache\""), "{m2}");
    assert_eq!(b1, b2);

    // Monotone sweep: tightened support served from the same entry.
    let (m3, _) = ok_parts(
        client
            .flock(&text, Some(3), RequestLimits::default())
            .unwrap(),
    );
    assert!(m3.contains("\"cache_hit\":true"), "{m3}");

    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(stats.contains("\"cache_hits\":2"), "{stats}");
    assert!(stats.contains("\"cache_misses\":1"), "{stats}");

    // Graceful shutdown: the request is acknowledged, the server
    // drains and join() returns, and the port stops accepting.
    assert!(client.shutdown().unwrap().is_ok());
    server.join();
    assert!(Client::connect(&addr).is_err());
}

#[test]
fn concurrent_clients_get_correct_answers() {
    let db = demo_db(64);
    let server = Server::serve(
        ServerConfig {
            threads: 4,
            // The whole burst must be admissible: 8 clients fire at
            // once and may all queue before a worker wakes.
            queue_cap: 16,
            ..Default::default()
        },
        db.clone(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            let db = db.clone();
            std::thread::spawn(move || {
                let support = 2 + (i % 4) as i64;
                let text = flock_text(support);
                let mut client = Client::connect(&addr).unwrap();
                let (_, body) =
                    ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
                let flock = QueryFlock::parse(&text).unwrap();
                let cold =
                    render_tsv(&evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap());
                assert_eq!(body, cold, "support {support}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut client = Client::connect(&addr).unwrap();
    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(stats.contains("\"requests\":"), "{stats}");
    server.shutdown();
    server.join();
}

/// With one worker and a one-slot queue, a volley of slow requests must
/// produce at least one immediate, typed `overloaded` rejection — never
/// a hang and never an untyped failure.
#[test]
fn overload_is_a_typed_immediate_rejection() {
    // The two subgoals share no variables: the direct plan is a cross
    // product (~160k tuples on 400 rows), slow enough to occupy the
    // single worker while the volley lands.
    let slow = "QUERY:\nanswer(B,C) :- r(B,$1) AND r(C,$2)\nFILTER:\nCOUNT(answer.B) >= 1";
    let server = Server::serve(
        ServerConfig {
            threads: 1,
            queue_cap: 1,
            ..Default::default()
        },
        demo_db(400),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();
    let limits = RequestLimits {
        timeout_ms: Some(2_000),
        ..Default::default()
    };

    let mut overloaded = 0;
    for _round in 0..3 {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    client.flock(slow, None, limits).unwrap()
                })
            })
            .collect();
        for h in handles {
            match h.join().unwrap() {
                Response::Ok { .. } => {}
                Response::Err { kind, detail } => {
                    assert!(
                        kind == "overloaded" || kind == "budget",
                        "unexpected error {kind}: {detail}"
                    );
                    if kind == "overloaded" {
                        overloaded += 1;
                    }
                }
            }
        }
        if overloaded > 0 {
            break;
        }
    }
    assert!(overloaded > 0, "no request was rejected as overloaded");

    let mut client = Client::connect(&addr).unwrap();
    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(!stats.contains("\"rejected\":0"), "{stats}");
    server.shutdown();
    server.join();
}

#[test]
fn over_cap_budget_is_rejected_before_queueing() {
    let server = Server::serve(
        ServerConfig {
            max_rows: Some(1_000),
            ..Default::default()
        },
        demo_db(8),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let limits = RequestLimits {
        max_rows: Some(1_000_000),
        ..Default::default()
    };
    match client.flock(&flock_text(1), None, limits).unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, "budget"),
        Response::Ok { meta, .. } => panic!("over-cap request accepted: {meta}"),
    }
    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(stats.contains("\"rejected\":1"), "{stats}");
    server.shutdown();
    server.join();
}
