//! TCP-level tests: framed sessions end to end, concurrent clients,
//! typed overload rejection, deadline propagation, client-disconnect
//! cancellation, slow-loris reaping, connection-cap shedding, and
//! graceful shutdown.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};
use qf_server::service::render_tsv;
use qf_server::{Client, RequestLimits, Response, Server, ServerConfig};
use qf_storage::{Database, Relation, Schema, Value};

fn demo_db(rows: usize) -> Database {
    // r(a, b): a in 0..rows, b = a % 7 — enough shape for support
    // thresholds to bite without being expensive.
    let tuples: Vec<Vec<Value>> = (0..rows as i64)
        .map(|a| vec![Value::int(a), Value::int(a % 7)])
        .collect();
    let mut db = Database::new();
    db.insert(Relation::from_rows(Schema::new("r", &["a", "b"]), tuples));
    db
}

fn flock_text(support: i64) -> String {
    format!("QUERY:\nanswer(B) :- r(B,$1)\nFILTER:\nCOUNT(answer.B) >= {support}")
}

fn ok_parts(resp: Response) -> (String, String) {
    match resp {
        Response::Ok { meta, body } => (meta, body),
        Response::Err { kind, detail } => panic!("unexpected err {kind}: {detail}"),
    }
}

/// The acceptance-criteria session: load, evaluate, repeat (cache hit,
/// identical bytes, no plan search), sweep a tightened threshold, read
/// stats, shut down gracefully.
#[test]
fn scripted_session_hits_cache_and_shuts_down() {
    let server = Server::serve(ServerConfig::default(), Database::new(), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    assert!(client.ping().unwrap().is_ok());
    let tsv = "r\ta\tb\n1\t1\n2\t1\n3\t1\n1\t2\n2\t2\n";
    assert!(client.load(tsv).unwrap().is_ok());

    let text = flock_text(2);
    let (m1, b1) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(m1.contains("\"cache_hit\":false"), "{m1}");

    // Identical repeat: answered from cache, byte-identical result.
    let (m2, b2) = ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
    assert!(m2.contains("\"cache_hit\":true"), "{m2}");
    assert!(m2.contains("\"strategy\":\"cache\""), "{m2}");
    assert_eq!(b1, b2);

    // Monotone sweep: tightened support served from the same entry.
    let (m3, _) = ok_parts(
        client
            .flock(&text, Some(3), RequestLimits::default())
            .unwrap(),
    );
    assert!(m3.contains("\"cache_hit\":true"), "{m3}");

    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(stats.contains("\"cache_hits\":2"), "{stats}");
    assert!(stats.contains("\"cache_misses\":1"), "{stats}");

    // Graceful shutdown: the request is acknowledged, the server
    // drains and join() returns, and the port stops accepting.
    assert!(client.shutdown().unwrap().is_ok());
    server.join();
    assert!(Client::connect(&addr).is_err());
}

#[test]
fn concurrent_clients_get_correct_answers() {
    let db = demo_db(64);
    let server = Server::serve(
        ServerConfig {
            threads: 4,
            // The whole burst must be admissible: 8 clients fire at
            // once and may all queue before a worker wakes.
            queue_cap: 16,
            ..Default::default()
        },
        db.clone(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            let db = db.clone();
            std::thread::spawn(move || {
                let support = 2 + (i % 4) as i64;
                let text = flock_text(support);
                let mut client = Client::connect(&addr).unwrap();
                let (_, body) =
                    ok_parts(client.flock(&text, None, RequestLimits::default()).unwrap());
                let flock = QueryFlock::parse(&text).unwrap();
                let cold =
                    render_tsv(&evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap());
                assert_eq!(body, cold, "support {support}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut client = Client::connect(&addr).unwrap();
    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(stats.contains("\"requests\":"), "{stats}");
    server.shutdown();
    server.join();
}

/// With one worker and a one-slot queue, a volley of slow requests must
/// produce at least one immediate, typed `overloaded` rejection — never
/// a hang and never an untyped failure.
#[test]
fn overload_is_a_typed_immediate_rejection() {
    // The two subgoals share no variables: the direct plan is a cross
    // product (~160k tuples on 400 rows), slow enough to occupy the
    // single worker while the volley lands.
    let slow = "QUERY:\nanswer(B,C) :- r(B,$1) AND r(C,$2)\nFILTER:\nCOUNT(answer.B) >= 1";
    let server = Server::serve(
        ServerConfig {
            threads: 1,
            queue_cap: 1,
            ..Default::default()
        },
        demo_db(400),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();
    let limits = RequestLimits {
        timeout_ms: Some(2_000),
        ..Default::default()
    };

    let mut overloaded = 0;
    for _round in 0..3 {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    client.flock(slow, None, limits).unwrap()
                })
            })
            .collect();
        for h in handles {
            match h.join().unwrap() {
                Response::Ok { .. } => {}
                Response::Err { kind, detail } => {
                    assert!(
                        kind == "overloaded" || kind == "budget" || kind == "timeout",
                        "unexpected error {kind}: {detail}"
                    );
                    if kind == "overloaded" {
                        overloaded += 1;
                    }
                }
            }
        }
        if overloaded > 0 {
            break;
        }
    }
    assert!(overloaded > 0, "no request was rejected as overloaded");

    let mut client = Client::connect(&addr).unwrap();
    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(!stats.contains("\"rejected\":0"), "{stats}");
    server.shutdown();
    server.join();
}

/// Poll `stats` until `pred` holds or the deadline passes; returns the
/// last stats line either way. Counter-based assertions race the worker
/// threads that increment them, so every one goes through here.
fn await_stats(addr: &str, deadline: Duration, pred: impl Fn(&str) -> bool) -> String {
    let start = Instant::now();
    let mut last = String::new();
    while start.elapsed() < deadline {
        if let Ok(mut c) = Client::connect(addr) {
            if let Ok(Response::Ok { meta, .. }) = c.stats() {
                last = meta;
                if pred(&last) {
                    return last;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    last
}

/// A deadline stamped at admission keeps counting while the job waits
/// in the queue: a request whose budget expires before a worker frees
/// up is rejected with a typed `timeout` in the `queue` stage, without
/// ever executing.
#[test]
fn queue_expired_deadline_is_a_typed_queue_timeout() {
    let slow = "QUERY:\nanswer(B,C) :- r(B,$1) AND r(C,$2)\nFILTER:\nCOUNT(answer.B) >= 1";
    let server = Server::serve(
        ServerConfig {
            threads: 1,
            queue_cap: 4,
            ..Default::default()
        },
        demo_db(400),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Occupy the single worker with a slow cross product.
    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            client.flock(slow, None, RequestLimits::default()).unwrap()
        })
    };
    // Give the blocker time to be admitted and start executing.
    std::thread::sleep(Duration::from_millis(200));

    // This request's 50 ms budget will expire while it queues.
    let mut client = Client::connect(&addr).unwrap();
    let limits = RequestLimits {
        timeout_ms: Some(50),
        ..Default::default()
    };
    match client.flock(&flock_text(1), None, limits).unwrap() {
        Response::Err { kind, detail } => {
            assert_eq!(kind, "timeout", "{detail}");
            assert!(detail.contains("queue"), "wrong stage: {detail}");
        }
        Response::Ok { meta, .. } => panic!("expired-in-queue request executed: {meta}"),
    }
    assert!(blocker.join().unwrap().is_ok());

    let stats = await_stats(&addr, Duration::from_secs(5), |s| {
        !s.contains("\"timeouts\":0")
    });
    assert!(!stats.contains("\"timeouts\":0"), "{stats}");
    server.shutdown();
    server.join();
}

/// A client timeout larger than the server cap is min'd down, never
/// rejected — unlike row/byte asks, an impatient client is harmless.
#[test]
fn client_timeout_ask_is_minned_with_the_server_cap() {
    let server = Server::serve(
        ServerConfig {
            timeout_ms: Some(60_000),
            ..Default::default()
        },
        demo_db(8),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let limits = RequestLimits {
        timeout_ms: Some(600_000), // over the cap: min'd, not rejected
        ..Default::default()
    };
    let (meta, _) = ok_parts(client.flock(&flock_text(1), None, limits).unwrap());
    assert!(meta.contains("\"results\":"), "{meta}");
    server.shutdown();
    server.join();
}

/// A client that hangs up while its flock is executing has its job
/// cancelled mid-plan: the `cancelled` counter ticks and the worker
/// frees up for other requests — an abandoned job must not run to
/// completion for nobody.
#[test]
fn disconnected_clients_job_is_cancelled_and_the_worker_freed() {
    let slow = "QUERY:\nanswer(B,C) :- r(B,$1) AND r(C,$2)\nFILTER:\nCOUNT(answer.B) >= 1";
    let server = Server::serve(
        ServerConfig {
            threads: 1,
            queue_cap: 4,
            ..Default::default()
        },
        demo_db(700),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Send the slow flock over a raw socket, then slam the connection.
    {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        let req = qf_server::Request::Flock {
            text: slow.to_string(),
            support: None,
            limits: RequestLimits::default(),
        };
        let mut buf = Vec::new();
        qf_server::frame::write_frame(&mut buf, req.render().as_bytes()).unwrap();
        stream.write_all(&buf).unwrap();
        stream.flush().unwrap();
        // Make sure the frame was admitted before we vanish.
        std::thread::sleep(Duration::from_millis(300));
    } // drop = FIN; the server's hangup probe sees it within one poll

    let stats = await_stats(&addr, Duration::from_secs(10), |s| {
        !s.contains("\"cancelled\":0")
    });
    assert!(
        !stats.contains("\"cancelled\":0"),
        "job was not cancelled: {stats}"
    );

    // The worker is free again: a normal request completes promptly.
    let mut client = Client::connect(&addr).unwrap();
    let (_, body) = ok_parts(
        client
            .flock(&flock_text(1), None, RequestLimits::default())
            .unwrap(),
    );
    assert!(!body.is_empty());
    server.shutdown();
    server.join();
}

/// A peer that opens a frame and then trickles nothing is reaped after
/// the strict mid-frame I/O timeout — and since jobs are admitted only
/// on complete frames, it never consumed a worker slot.
#[test]
fn slow_loris_is_reaped_without_consuming_a_worker() {
    let server = Server::serve(
        ServerConfig {
            threads: 1,
            io_timeout_ms: 300,
            idle_timeout_ms: 60_000,
            ..Default::default()
        },
        demo_db(16),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Start a frame (one magic byte) and stall.
    let mut loris = std::net::TcpStream::connect(&addr).unwrap();
    loris.write_all(b"Q").unwrap();
    loris.flush().unwrap();

    // While the loris dangles, the single worker serves normal traffic:
    // it never held anything but its connection slot.
    let mut client = Client::connect(&addr).unwrap();
    let (_, body) = ok_parts(
        client
            .flock(&flock_text(1), None, RequestLimits::default())
            .unwrap(),
    );
    assert!(!body.is_empty());

    // The loris connection is closed by the server within the strict
    // timeout (plus scheduling slack): the next read sees EOF.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    let start = Instant::now();
    match loris.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("server sent {n} bytes to a half-open frame"),
        Err(e) => panic!("expected EOF within {:?}: {e}", start.elapsed()),
    }
    server.shutdown();
    server.join();
}

/// Connections beyond the cap are shed immediately with a typed
/// `overloaded` response carrying a retry-after hint — before they
/// consume a connection thread or queue slot.
#[test]
fn connections_over_the_cap_are_shed_with_retry_after() {
    let server = Server::serve(
        ServerConfig {
            max_conns: 1,
            ..Default::default()
        },
        demo_db(8),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Occupy the single slot with an established, verified connection.
    let mut holder = Client::connect(&addr).unwrap();
    assert!(holder.ping().unwrap().is_ok());

    // The next connection is refused with the typed hint. The shed
    // response is written unsolicited, so a plain request/read sees it.
    let mut shed = Client::connect(&addr).unwrap();
    match shed.ping().unwrap() {
        Response::Err { kind, detail } => {
            assert_eq!(kind, "overloaded", "{detail}");
            assert!(detail.contains("retry-after-ms="), "{detail}");
        }
        Response::Ok { meta, .. } => panic!("over-cap connection served: {meta}"),
    }
    drop(shed);

    // Release the slot; the same address serves again and the shed
    // connection was counted.
    drop(holder);
    let stats = await_stats(&addr, Duration::from_secs(5), |s| {
        !s.contains("\"conn_rejected\":0")
    });
    assert!(!stats.contains("\"conn_rejected\":0"), "{stats}");
    server.shutdown();
    server.join();
}

/// A corrupted request frame is answered with a typed `proto` error —
/// the checksum caught it before parse, so the client knows the request
/// never executed and may resend anything safely.
#[test]
fn corrupt_frame_gets_a_typed_proto_error() {
    let server = Server::serve(ServerConfig::default(), demo_db(8), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut buf = Vec::new();
    qf_server::frame::write_frame(&mut buf, b"ping\n\n").unwrap();
    let last = buf.len() - 1;
    buf[last] ^= 0x40; // flip a checksum bit
    stream.write_all(&buf).unwrap();
    stream.flush().unwrap();

    let payload = qf_server::frame::read_frame(&mut stream).unwrap().unwrap();
    let resp = Response::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    match resp {
        Response::Err { kind, detail } => {
            assert_eq!(kind, "proto", "{detail}");
            assert!(detail.contains("corrupt frame"), "{detail}");
        }
        Response::Ok { meta, .. } => panic!("corrupt frame served: {meta}"),
    }
    // After corruption the server drops the connection (stream offsets
    // can no longer be trusted).
    let mut b = [0u8; 1];
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert_eq!(stream.read(&mut b).unwrap(), 0, "connection must close");
    server.shutdown();
    server.join();
}

#[test]
fn over_cap_budget_is_rejected_before_queueing() {
    let server = Server::serve(
        ServerConfig {
            max_rows: Some(1_000),
            ..Default::default()
        },
        demo_db(8),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let limits = RequestLimits {
        max_rows: Some(1_000_000),
        ..Default::default()
    };
    match client.flock(&flock_text(1), None, limits).unwrap() {
        Response::Err { kind, .. } => assert_eq!(kind, "budget"),
        Response::Ok { meta, .. } => panic!("over-cap request accepted: {meta}"),
    }
    let (stats, _) = ok_parts(client.stats().unwrap());
    assert!(stats.contains("\"rejected\":1"), "{stats}");
    server.shutdown();
    server.join();
}
