//! Property tests for the core parsers: arbitrary input must produce
//! `Ok` or `Err`, never a panic, and successful parses must round-trip.

use proptest::prelude::*;

use qf_core::{FilterCondition, QueryFlock};

proptest! {
    /// The filter parser never panics, whatever bytes it is fed.
    #[test]
    fn filter_parse_never_panics(s in ".{0,64}") {
        let _ = FilterCondition::parse(&s);
    }

    /// Near-miss inputs — a valid filter with one character replaced —
    /// never panic, and anything that still parses round-trips through
    /// its own rendering.
    #[test]
    fn filter_parse_mutated_valid_roundtrips(pos in 0usize..64, c in ".{1,1}") {
        let valid = "COUNT(answer.B) >= 20";
        let mut chars: Vec<char> = valid.chars().collect();
        let pos = pos % chars.len();
        if let Some(ch) = c.chars().next() {
            chars[pos] = ch;
        }
        let mutated: String = chars.into_iter().collect();
        if let Ok(f) = FilterCondition::parse(&mutated) {
            let rendered = f.render("answer");
            prop_assert_eq!(FilterCondition::parse(&rendered).unwrap(), f);
        }
    }

    /// The two-section flock parser (`QUERY:` / `FILTER:`) never panics
    /// either — it sits directly on user input in the CLI.
    #[test]
    fn flock_parse_never_panics(s in ".{0,96}") {
        let _ = QueryFlock::parse(&s);
    }

    /// Embedding arbitrary soup in an otherwise well-formed flock
    /// exercises the section-splitting paths without panicking.
    #[test]
    fn flock_parse_with_sections_never_panics(q in ".{0,48}", f in ".{0,32}") {
        let text = format!("QUERY:\n{q}\nFILTER:\n{f}");
        let _ = QueryFlock::parse(&text);
    }
}
