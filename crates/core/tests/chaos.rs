//! Chaos-matrix acceptance tests: a journaled, spilling plan execution
//! under a seed-driven fault-injecting filesystem either completes with
//! a result bitwise-identical to the fault-free run, or fails with a
//! typed error from which the same run directory resumes cleanly on the
//! real filesystem. Silent wrong answers are the one outcome the matrix
//! forbids.
//!
//! Seeds come from `QF_CHAOS_SEEDS` (comma-separated) when set, so CI
//! can pin a list and a failing seed can be replayed locally:
//! `QF_CHAOS_SEEDS=17 cargo test -p qf-core --test chaos`.

use std::path::PathBuf;
use std::sync::Arc;

use qf_core::{
    catalog_fingerprint, execute_plan_journaled, plan_fingerprint, single_param_plan, ExecContext,
    JoinOrderStrategy, QueryFlock, RunJournal,
};
use qf_storage::{ChaosFs, Database, Fault, OpClass, Relation, Schema, SpillDir, Value, Vfs};

/// Enough data that a small memory budget forces the self-join to
/// spill, so the matrix exercises spill *and* journal I/O.
fn basket_db() -> Database {
    let mut db = Database::new();
    let mut rows = Vec::new();
    for b in 0..200i64 {
        rows.push(vec![Value::int(b), Value::str("hot1")]);
        rows.push(vec![Value::int(b), Value::str("hot2")]);
        rows.push(vec![Value::int(b), Value::str(&format!("noise{b}"))]);
    }
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        rows,
    ));
    db
}

fn pairs_flock() -> QueryFlock {
    QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        120,
    )
    .unwrap()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qf-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const MEM_BUDGET: u64 = 32 * 1024;

/// Budgeted single-thread context spilling into a fresh dir under
/// `parent` on `vfs`. Single-threaded so the fault stream hits the same
/// operations in the same order for a given seed.
fn ctx_on(vfs: Arc<dyn Vfs>, parent: &std::path::Path) -> ExecContext {
    let sd = SpillDir::create_on(vfs, parent).expect("create spill dir");
    ExecContext::unbounded()
        .with_mem_budget(MEM_BUDGET)
        .with_threads(1)
        .with_spill(Arc::new(sd))
}

/// One full journaled run of the reference plan on `vfs`.
fn run_on(
    vfs: Arc<dyn Vfs>,
    spill_parent: &std::path::Path,
    journal_dir: &std::path::Path,
) -> (qf_core::Result<Relation>, qf_core::ExecStats) {
    let db = basket_db();
    let plan = single_param_plan(&pairs_flock(), &db).unwrap();
    let ctx = ctx_on(vfs.clone(), spill_parent);
    let result = RunJournal::open_on(
        vfs,
        journal_dir,
        plan_fingerprint(&plan),
        catalog_fingerprint(&db),
    )
    .and_then(|mut journal| {
        execute_plan_journaled(&plan, &db, JoinOrderStrategy::Greedy, &ctx, &mut journal)
    })
    .map(|run| run.result);
    let stats = ctx.stats();
    (result, stats)
}

fn seeds() -> Vec<u64> {
    match std::env::var("QF_CHAOS_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("QF_CHAOS_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=10).collect(),
    }
}

#[test]
fn chaos_matrix_no_silent_wrong_answers() {
    let base = scratch("matrix");

    // Fault-free reference, and proof the workload actually spills.
    let clean_journal = base.join("clean-run");
    let (reference, clean_stats) = run_on(
        qf_storage::real_fs(),
        &base.join("clean-spill"),
        &clean_journal,
    );
    let reference = reference.expect("fault-free run");
    assert!(
        clean_stats.spills > 0,
        "matrix workload must exercise the spill path (stats: {clean_stats:?})"
    );

    for seed in seeds() {
        let chaos = ChaosFs::seeded(seed, 40);
        let spill_parent = base.join(format!("spill-{seed}"));
        std::fs::create_dir_all(&spill_parent).unwrap();
        let journal_dir = base.join(format!("run-{seed}"));
        let (outcome, _) = run_on(Arc::new(chaos.clone()), &spill_parent, &journal_dir);
        match outcome {
            Ok(result) => {
                assert_eq!(
                    result.tuples(),
                    reference.tuples(),
                    "seed {seed}: chaos run completed with a WRONG answer \
                     (injected: {:?})",
                    chaos.injection_log()
                );
            }
            Err(e) => {
                // Typed, descriptive failure — and the run directory it
                // leaves behind must still resume cleanly on the real
                // filesystem to the exact reference answer.
                assert!(!e.to_string().is_empty(), "seed {seed}: empty error");
                let (resumed, _) = run_on(
                    qf_storage::real_fs(),
                    &base.join(format!("resume-spill-{seed}")),
                    &journal_dir,
                );
                let resumed = resumed.unwrap_or_else(|e2| {
                    panic!("seed {seed}: resume after typed failure `{e}` failed: {e2}")
                });
                assert_eq!(
                    resumed.tuples(),
                    reference.tuples(),
                    "seed {seed}: resume after `{e}` diverged"
                );
            }
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn fsync_failure_during_journal_is_advisory() {
    let base = scratch("fsync");
    let db = basket_db();
    let plan = single_param_plan(&pairs_flock(), &db).unwrap();

    let reference = {
        let ctx = ExecContext::unbounded();
        qf_core::execute_plan_with(&plan, &db, JoinOrderStrategy::Greedy, &ctx)
            .unwrap()
            .result
    };

    // Quiet chaos (no random faults) with one pinned fsync failure.
    // Journal fsyncs go: meta (#1), then per step: snapshot (#2), log
    // append (#3), … — failing #3 hits the first log append.
    let chaos = Arc::new(ChaosFs::quiet().with_fault(OpClass::Fsync, 3, Fault::FsyncFail));
    let journal_dir = base.join("run");
    let mut journal = RunJournal::open_on(
        chaos.clone(),
        &journal_dir,
        plan_fingerprint(&plan),
        catalog_fingerprint(&db),
    )
    .unwrap();
    let ctx = ExecContext::unbounded();
    let run =
        execute_plan_journaled(&plan, &db, JoinOrderStrategy::Greedy, &ctx, &mut journal).unwrap();

    // The run completed identically; the failure was downgraded to a
    // recorded advisory degradation rather than an error.
    assert_eq!(run.result.tuples(), reference.tuples());
    assert_eq!(chaos.injected(), 1, "{:?}", chaos.injection_log());
    let stats = ctx.stats();
    assert!(
        stats
            .degradations
            .iter()
            .any(|d| d.stage == "journal-advisory"),
        "expected a journal-advisory degradation, got {:?}",
        stats.degradations
    );
    drop(journal);

    // Resume is merely disabled past the failure point: a rerun on the
    // real filesystem recomputes the unjournaled steps and agrees.
    let (resumed, _) = run_on(
        qf_storage::real_fs(),
        &base.join("resume-spill"),
        &journal_dir,
    );
    assert_eq!(resumed.unwrap().tuples(), reference.tuples());
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn corrupt_snapshot_truncates_prefix_and_recomputes() {
    let base = scratch("snapcorrupt");
    let db = basket_db();
    let plan = single_param_plan(&pairs_flock(), &db).unwrap();
    assert!(plan.len() >= 3, "need a multi-step plan");
    let journal_dir = base.join("run");

    let open = |db: &Database| {
        RunJournal::open(
            &journal_dir,
            plan_fingerprint(&plan),
            catalog_fingerprint(db),
        )
        .unwrap()
    };

    let ctx = ExecContext::unbounded();
    let mut journal = open(&db);
    let reference =
        execute_plan_journaled(&plan, &db, JoinOrderStrategy::Greedy, &ctx, &mut journal)
            .unwrap()
            .result;
    drop(journal);

    // Flip one byte in the middle of the second step's snapshot.
    let victim = journal_dir.join("step-1.qfr");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();

    let ctx = ExecContext::unbounded();
    let mut journal = open(&db);
    let run =
        execute_plan_journaled(&plan, &db, JoinOrderStrategy::Greedy, &ctx, &mut journal).unwrap();
    assert_eq!(run.result.tuples(), reference.tuples());
    // Step 0 replayed; the damaged step 1 and everything after it were
    // recomputed, and the recovery was recorded.
    assert!(run.steps[0].resumed, "{:?}", run.steps);
    assert!(!run.steps[1].resumed, "{:?}", run.steps);
    let stats = ctx.stats();
    assert!(
        stats
            .degradations
            .iter()
            .any(|d| d.stage == "journal-corrupt-snapshot"),
        "expected a journal-corrupt-snapshot degradation, got {:?}",
        stats.degradations
    );
    assert!(stats.corruption_recoveries >= 1, "{stats:?}");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn every_byte_flip_in_a_snapshot_is_detected_on_replay() {
    let base = scratch("flip");
    let db = basket_db();
    let plan = single_param_plan(&pairs_flock(), &db).unwrap();
    let journal_dir = base.join("run");

    let ctx = ExecContext::unbounded();
    let mut journal = RunJournal::open(
        &journal_dir,
        plan_fingerprint(&plan),
        catalog_fingerprint(&db),
    )
    .unwrap();
    let reference =
        execute_plan_journaled(&plan, &db, JoinOrderStrategy::Greedy, &ctx, &mut journal)
            .unwrap()
            .result;
    drop(journal);

    let victim = journal_dir.join("step-0.qfr");
    let pristine = std::fs::read(&victim).unwrap();
    // Every position, a stride of offsets per run keeps this fast while
    // the storage layer's own tests cover literally every byte.
    for pos in (0..pristine.len()).step_by(7) {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let ctx = ExecContext::unbounded();
        let mut journal = RunJournal::open(
            &journal_dir,
            plan_fingerprint(&plan),
            catalog_fingerprint(&db),
        )
        .unwrap();
        let run = execute_plan_journaled(&plan, &db, JoinOrderStrategy::Greedy, &ctx, &mut journal)
            .unwrap();
        // Never a wrong answer: the flip is detected, the prefix is
        // truncated, and the step recomputes to the right result.
        assert_eq!(
            run.result.tuples(),
            reference.tuples(),
            "byte {pos}: flipped snapshot produced a wrong answer"
        );
        assert!(
            !run.steps[0].resumed,
            "byte {pos}: corrupt snapshot was replayed as-is"
        );
        drop(journal);
        std::fs::write(&victim, &pristine).unwrap();
        // Restore the journal's own record of step 0 for the next
        // iteration (the recompute rewrote snapshot and log).
    }
    std::fs::remove_dir_all(&base).ok();
}
