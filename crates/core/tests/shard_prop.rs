//! Property tests for the scatter-gather algebra: partition → vacuous
//! per-fragment evaluation → algebraic merge must be bitwise-identical
//! to single-node evaluation, for every merge algebra (`COUNT`/`SUM`
//! add, `MIN`/`MAX` extremize), over 1/2/4 shards, with empty and
//! skewed fragments arising naturally from the generated key
//! distributions.
//!
//! Symbols are deliberately non-numeric: the TSV round-trip the real
//! wire path performs parses digit-like symbols as integers, and these
//! tests pin the in-memory algebra, not TSV quirks. `SUM` weights are
//! non-negative per the engine's SUM precondition.

use std::collections::BTreeSet;

use proptest::prelude::*;

use qf_core::{
    direct_plan, evaluate_scored_partial, execute_plan_scored_with, flock_result_from_scored,
    merge_scored_partials, partial_flock, partition_database, replica_workers, scored_schema,
    shard_key_pos, worker_fragments, ExecContext, JoinOrderStrategy, QueryFlock,
};
use qf_storage::{Database, Relation, Schema, Value};

const ITEMS: [&str; 5] = ["ale", "brie", "cod", "dill", "eggs"];

/// One flock per merge algebra, over `baskets(bid, item, w)` keyed on
/// the basket id (head position 0 — every subgoal is keyed there).
fn flock_for(agg: usize, threshold: i64) -> QueryFlock {
    let filter = match agg {
        0 => format!("COUNT(answer.B) >= {threshold}"),
        1 => format!("SUM(answer.W) >= {threshold}"),
        2 => format!("MIN(answer.W) <= {threshold}"),
        _ => format!("MAX(answer.W) > {threshold}"),
    };
    QueryFlock::parse(&format!(
        "QUERY:\nanswer(B,W) :- baskets(B,$1,W)\nFILTER:\n{filter}"
    ))
    .expect("generated flock parses")
}

fn basket_db(rows: &[(i64, usize, i64)], skew: bool) -> Database {
    let tuples: Vec<Vec<Value>> = rows
        .iter()
        .map(|(b, i, w)| {
            // Skewed runs squeeze every basket id into {0,1,2}: with 4
            // shards at least one fragment is guaranteed empty and the
            // others uneven.
            let b = if skew { b % 3 } else { *b };
            vec![
                Value::int(b),
                Value::str(ITEMS[i % ITEMS.len()]),
                Value::int(*w),
            ]
        })
        .collect();
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item", "w"]),
        tuples,
    ));
    db
}

proptest! {
    /// The tentpole exactness property: for every aggregate, shard
    /// count, and catalog (including empty and skewed fragments), the
    /// merged vacuous partials equal the single-node scored relation
    /// bitwise — and therefore so does the thresholded final result.
    #[test]
    fn scatter_gather_matches_single_node(
        rows in prop::collection::vec((0i64..12, 0usize..5, 1i64..20), 0..40),
        agg in 0usize..4,
        threshold in -5i64..30,
        skew in any::<bool>(),
    ) {
        let db = basket_db(&rows, skew);
        let flock = flock_for(agg, threshold);
        prop_assert_eq!(shard_key_pos(&flock, &BTreeSet::new()), Some(0));

        let ctx = ExecContext::default();
        let plan = direct_plan(&flock).expect("direct plan");
        let single =
            execute_plan_scored_with(&plan, &db, JoinOrderStrategy::Greedy, &ctx).expect("single");
        let single_result = flock_result_from_scored(&flock, &single.scored, flock.filter());
        let step = &plan.steps[0];
        let mini = partial_flock(step, flock.filter()).expect("partial flock");
        // The single-node reference for the *merged* partials is the
        // vacuous mini-flock over the whole catalog: scored runs keep
        // only rows passing their own filter, so the real-threshold
        // run's scored relation is already pruned.
        let vacuous_single = evaluate_scored_partial(&mini, &db, JoinOrderStrategy::Greedy, &ctx)
            .expect("vacuous single");

        for shards in [1usize, 2, 4] {
            let frags = partition_database(&db, shards, &BTreeSet::new());
            prop_assert_eq!(frags.len(), shards);
            let parts: Vec<Relation> = frags
                .iter()
                .map(|frag| {
                    evaluate_scored_partial(&mini, frag, JoinOrderStrategy::Greedy, &ctx)
                        .expect("partial eval")
                })
                .collect();
            let merged = merge_scored_partials(&flock.filter().agg, scored_schema(step), &parts)
                .expect("merge");
            prop_assert_eq!(
                merged.tuples(),
                vacuous_single.tuples(),
                "scored mismatch at {} shard(s)",
                shards
            );
            // Thresholding the merged partials globally reproduces the
            // real-threshold single-node result bitwise.
            let sharded_result = flock_result_from_scored(&flock, &merged, flock.filter());
            prop_assert_eq!(sharded_result.tuples(), single_result.tuples());
        }
    }

    /// The replica-failover exactness property: under R=2 replication
    /// (fragment *i* on workers *i* and *i+1 mod n*), kill ANY single
    /// worker, serve every fragment from its surviving copy, and the
    /// merged result is still bitwise-identical to single-node — for
    /// all four merge algebras. Replication never changes the bytes
    /// because each fragment is evaluated exactly once, whichever host
    /// serves it.
    #[test]
    fn replica_failover_matches_single_node(
        rows in prop::collection::vec((0i64..12, 0usize..5, 1i64..20), 0..40),
        agg in 0usize..4,
        threshold in -5i64..30,
        skew in any::<bool>(),
        shards in prop::sample::select(vec![2usize, 3, 4]),
    ) {
        let db = basket_db(&rows, skew);
        let flock = flock_for(agg, threshold);
        let ctx = ExecContext::default();
        let plan = direct_plan(&flock).expect("direct plan");
        let single =
            execute_plan_scored_with(&plan, &db, JoinOrderStrategy::Greedy, &ctx).expect("single");
        let single_result = flock_result_from_scored(&flock, &single.scored, flock.filter());
        let step = &plan.steps[0];
        let mini = partial_flock(step, flock.filter()).expect("partial flock");

        let replicas = 2usize;
        let frags = partition_database(&db, shards, &BTreeSet::new());
        // Every worker's hosted set is consistent with the placement
        // map, and with one worker dead every fragment still has a
        // live host when R=2 and n≥2.
        for w in 0..shards {
            for f in worker_fragments(w, shards, replicas) {
                prop_assert!(replica_workers(f, shards, replicas).contains(&w));
            }
        }
        // Kill each worker in turn; the property must hold for ALL of
        // them, not just a sampled one.
        for dead in 0..shards {
            let mut parts: Vec<Relation> = Vec::with_capacity(shards);
            for (f, frag) in frags.iter().enumerate() {
                let host = replica_workers(f, shards, replicas)
                    .into_iter()
                    .find(|&w| w != dead)
                    .expect("R=2 leaves a live replica for any single dead worker");
                // All copies of a fragment are bitwise-identical (they
                // come from the same partition), so "read from `host`"
                // is just: evaluate fragment f — after checking host
                // really holds f.
                prop_assert!(worker_fragments(host, shards, replicas).contains(&f));
                parts.push(
                    evaluate_scored_partial(&mini, frag, JoinOrderStrategy::Greedy, &ctx)
                        .expect("partial eval"),
                );
            }
            let merged = merge_scored_partials(&flock.filter().agg, scored_schema(step), &parts)
                .expect("merge");
            let sharded_result = flock_result_from_scored(&flock, &merged, flock.filter());
            prop_assert_eq!(
                sharded_result.tuples(),
                single_result.tuples(),
                "failover result diverged: {} shards, worker {} dead",
                shards,
                dead
            );
        }
    }

    /// Partitioning is total and stable whatever the key distribution:
    /// fragments are disjoint, cover the input, and agree with
    /// re-hashing.
    #[test]
    fn partition_is_a_partition(
        rows in prop::collection::vec((0i64..40, 0usize..5, 1i64..9), 0..50),
        shards in prop::sample::select(vec![1usize, 2, 4, 7]),
    ) {
        let db = basket_db(&rows, false);
        let rel = db.iter().next().expect("one relation");
        let frags = partition_database(&db, shards, &BTreeSet::new());
        let total: usize = frags
            .iter()
            .map(|f| f.iter().map(Relation::len).sum::<usize>())
            .sum();
        prop_assert_eq!(total, rel.len());
        for frag in &frags {
            for part in frag.iter() {
                for t in part.iter() {
                    prop_assert!(rel.contains(t));
                }
            }
        }
    }
}
