//! Crash-safe resume acceptance tests: a journaled plan execution that
//! dies mid-plan — at *any* operator invocation, under the
//! `fault-injection` feature — resumes from its run directory to a
//! bitwise-identical final result without re-executing completed
//! `FILTER` steps.

use std::path::PathBuf;

use qf_core::{
    catalog_fingerprint, execute_plan, execute_plan_journaled, plan_fingerprint, single_param_plan,
    ExecContext, JoinOrderStrategy, Optimizer, OptimizerConfig, QueryFlock, RunJournal, Strategy,
};
use qf_storage::{Database, Relation, Schema, Value};

fn basket_db() -> Database {
    let mut db = Database::new();
    let mut rows = Vec::new();
    for b in 0..30i64 {
        rows.push(vec![Value::int(b), Value::str("hot1")]);
        rows.push(vec![Value::int(b), Value::str("hot2")]);
        rows.push(vec![Value::int(b), Value::str(&format!("noise{b}"))]);
    }
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        rows,
    ));
    db
}

fn pairs_flock() -> QueryFlock {
    QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        20,
    )
    .unwrap()
}

fn run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qf-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_journal(dir: &std::path::Path, plan: &qf_core::QueryPlan, db: &Database) -> RunJournal {
    RunJournal::open(dir, plan_fingerprint(plan), catalog_fingerprint(db)).unwrap()
}

#[test]
fn fully_journaled_run_replays_without_reevaluation() {
    let db = basket_db();
    let flock = pairs_flock();
    let plan = single_param_plan(&flock, &db).unwrap();
    let reference = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();

    let dir = run_dir("replay");
    let mut journal = open_journal(&dir, &plan, &db);
    let first = execute_plan_journaled(
        &plan,
        &db,
        JoinOrderStrategy::Greedy,
        &ExecContext::unbounded(),
        &mut journal,
    )
    .unwrap();
    assert_eq!(first.result.tuples(), reference.result.tuples());
    assert!(first.steps.iter().all(|s| !s.resumed));

    // A second run over the same journal replays every step.
    let mut journal = open_journal(&dir, &plan, &db);
    let second = execute_plan_journaled(
        &plan,
        &db,
        JoinOrderStrategy::Greedy,
        &ExecContext::unbounded(),
        &mut journal,
    )
    .unwrap();
    assert_eq!(second.result.tuples(), reference.result.tuples());
    assert_eq!(
        second.result.schema().columns(),
        reference.result.schema().columns()
    );
    assert!(second.steps.iter().all(|s| s.resumed), "{:?}", second.steps);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partial_journal_resumes_remaining_steps() {
    let db = basket_db();
    let flock = pairs_flock();
    let plan = single_param_plan(&flock, &db).unwrap();
    let reference = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
    assert!(plan.len() >= 3, "need a multi-step plan");

    // Simulate a crash after the first step: journal exactly one step
    // from a complete run, then resume from that prefix.
    let dir = run_dir("partial");
    {
        let mut scratch = open_journal(&run_dir("partial-scratch"), &plan, &db);
        execute_plan_journaled(
            &plan,
            &db,
            JoinOrderStrategy::Greedy,
            &ExecContext::unbounded(),
            &mut scratch,
        )
        .unwrap();
        let mut journal = open_journal(&dir, &plan, &db);
        journal
            .record_step(0, &scratch.load_step(0).unwrap())
            .unwrap();
    }
    let mut journal = open_journal(&dir, &plan, &db);
    let resumed = execute_plan_journaled(
        &plan,
        &db,
        JoinOrderStrategy::Greedy,
        &ExecContext::unbounded(),
        &mut journal,
    )
    .unwrap();
    assert_eq!(resumed.result.tuples(), reference.result.tuples());
    assert!(resumed.steps[0].resumed);
    assert!(resumed.steps[1..].iter().all(|s| !s.resumed));
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(run_dir("partial-scratch")).ok();
}

#[test]
fn optimizer_journal_resumes_dynamic_and_static() {
    let db = basket_db();
    let flock = pairs_flock();
    for strategy in [Strategy::Dynamic, Strategy::BestStatic, Strategy::Direct] {
        let dir = run_dir(&format!("opt-{strategy:?}"));
        let opt = Optimizer {
            config: OptimizerConfig {
                strategy,
                journal_dir: Some(dir.clone()),
                ..OptimizerConfig::default()
            },
        };
        let first = opt.evaluate(&flock, &db).unwrap();
        assert_eq!(first.resumed_steps, 0, "{strategy:?}");
        let second = opt.evaluate(&flock, &db).unwrap();
        assert!(second.resumed_steps > 0, "{strategy:?}");
        assert_eq!(
            first.result.tuples(),
            second.result.tuples(),
            "{strategy:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn changed_inputs_invalidate_the_journal() {
    let db = basket_db();
    let flock = pairs_flock();
    let dir = run_dir("invalidate");
    let opt = Optimizer {
        config: OptimizerConfig {
            strategy: Strategy::Dynamic,
            journal_dir: Some(dir.clone()),
            ..OptimizerConfig::default()
        },
    };
    opt.evaluate(&flock, &db).unwrap();
    // Same journal, different data: must refuse, not resume stale work.
    let mut altered = Database::new();
    altered.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        vec![vec![Value::int(1), Value::str("only")]],
    ));
    let err = opt.evaluate(&flock, &altered).unwrap_err();
    assert!(
        err.to_string().contains("catalog fingerprint"),
        "expected catalog mismatch, got: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The chaos matrix: for every operator invocation `n` of a multi-step
/// plan, arm a fault at `n`, run to failure, then resume from the
/// journal with a clean context. The resumed run must (a) produce the
/// reference result bitwise, and (b) replay exactly the journaled
/// prefix without re-executing it.
#[cfg(feature = "fault-injection")]
#[test]
fn killed_run_resumes_identically_at_every_fault_point() {
    use qf_core::{EngineError, FlockError};

    let db = basket_db();
    let flock = pairs_flock();
    let plan = single_param_plan(&flock, &db).unwrap();
    let reference = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();

    let mut swept_any_fault = false;
    for n in 1u64..10_000 {
        let dir = run_dir(&format!("chaos-{n}"));
        let mut journal = open_journal(&dir, &plan, &db);
        let crashed = ExecContext::unbounded().with_fault_point(n);
        match execute_plan_journaled(
            &plan,
            &db,
            JoinOrderStrategy::Greedy,
            &crashed,
            &mut journal,
        ) {
            Err(FlockError::Engine(EngineError::FaultInjected { .. })) => {
                swept_any_fault = true;
                drop(journal);
                // Resume with a fresh journal handle, as a new process
                // would after `kill -9`.
                let mut journal = open_journal(&dir, &plan, &db);
                let completed = journal.contiguous_prefix(plan.len());
                let resumed = execute_plan_journaled(
                    &plan,
                    &db,
                    JoinOrderStrategy::Greedy,
                    &ExecContext::unbounded(),
                    &mut journal,
                )
                .unwrap();
                assert_eq!(
                    resumed.result.tuples(),
                    reference.result.tuples(),
                    "fault point {n}"
                );
                assert_eq!(
                    resumed.result.schema().columns(),
                    reference.result.schema().columns(),
                    "fault point {n}"
                );
                // Exactly the journaled prefix is replayed, nothing is
                // re-executed, nothing later is skipped.
                for (idx, step) in resumed.steps.iter().enumerate() {
                    assert_eq!(
                        step.resumed,
                        idx < completed,
                        "fault point {n}, step {idx}: {:?}",
                        resumed.steps
                    );
                }
                std::fs::remove_dir_all(&dir).unwrap();
            }
            // Fault point beyond the plan's total invocations: the
            // whole pipeline has been swept.
            Ok(run) => {
                assert_eq!(run.result.tuples(), reference.result.tuples());
                std::fs::remove_dir_all(&dir).unwrap();
                assert!(swept_any_fault, "sweep never injected a fault");
                return;
            }
            Err(e) => panic!("fault at invocation {n} surfaced as unexpected error: {e}"),
        }
    }
    panic!("fault sweep did not terminate");
}
