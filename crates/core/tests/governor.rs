//! Governor acceptance tests: a deliberately explosive flock terminates
//! under every kind of budget, governed failures leave the catalog
//! untouched, and (under `fault-injection`) a fault at any operator
//! invocation propagates cleanly out of the pipeline.

use std::time::Duration;

use qf_core::{
    best_plan_with, evaluate_direct, evaluate_direct_with, EngineError, ExecContext, FlockError,
    JoinOrderStrategy, QueryFlock, Resource,
};
use qf_storage::{Database, Relation};

/// A realistic basket workload from the synthetic generator.
fn basket_db() -> Database {
    let data = qf_datagen::baskets::generate(&qf_datagen::BasketConfig {
        n_baskets: 200,
        avg_basket_size: 6,
        n_items: 50,
        n_patterns: 5,
        avg_pattern_size: 3,
        pattern_prob: 0.8,
        seed: 7,
    });
    let mut db = Database::new();
    db.insert(data.baskets);
    db
}

/// A flock whose two subgoals share no variables: its direct plan is a
/// cross product of `baskets` with itself (~1.4M tuples on
/// [`basket_db`]) — the §4 blow-up the governor exists to survive.
fn explosive_flock() -> QueryFlock {
    QueryFlock::parse(
        "QUERY:
         answer(B,C) :- baskets(B,$1) AND baskets(C,$2)
         FILTER:
         COUNT(answer.B) >= 2",
    )
    .unwrap()
}

/// The paper's Fig. 2 pairs flock — small enough to finish, used where
/// a *successful* governed run is needed.
fn pairs_flock() -> QueryFlock {
    QueryFlock::parse(
        "QUERY:
         answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
         FILTER:
         COUNT(answer.B) >= 20",
    )
    .unwrap()
}

fn snapshot(db: &Database) -> Vec<(String, Relation)> {
    db.iter()
        .map(|r| (r.name().to_string(), r.clone()))
        .collect()
}

#[test]
fn explosive_flock_trips_row_budget() {
    let db = basket_db();
    let ctx = ExecContext::unbounded().with_max_rows(20_000);
    let err =
        evaluate_direct_with(&explosive_flock(), &db, JoinOrderStrategy::Greedy, &ctx).unwrap_err();
    assert!(
        matches!(
            err,
            FlockError::Engine(EngineError::ResourceExhausted {
                resource: Resource::Rows,
                limit: 20_000,
                ..
            })
        ),
        "{err:?}"
    );
}

#[test]
fn explosive_flock_trips_mem_budget() {
    let db = basket_db();
    let ctx = ExecContext::unbounded().with_mem_budget(1 << 20);
    let err =
        evaluate_direct_with(&explosive_flock(), &db, JoinOrderStrategy::Greedy, &ctx).unwrap_err();
    assert!(
        matches!(
            err,
            FlockError::Engine(EngineError::ResourceExhausted {
                resource: Resource::Memory,
                ..
            })
        ),
        "{err:?}"
    );
}

#[test]
fn explosive_flock_observes_expired_deadline() {
    let db = basket_db();
    let ctx = ExecContext::unbounded().with_timeout(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    let err =
        evaluate_direct_with(&explosive_flock(), &db, JoinOrderStrategy::Greedy, &ctx).unwrap_err();
    assert!(
        matches!(
            err,
            FlockError::Engine(EngineError::ResourceExhausted {
                resource: Resource::Time,
                ..
            })
        ),
        "{err:?}"
    );
}

#[test]
fn cancellation_aborts_evaluation() {
    let db = basket_db();
    let ctx = ExecContext::unbounded();
    ctx.cancel_token().cancel();
    let err =
        evaluate_direct_with(&explosive_flock(), &db, JoinOrderStrategy::Greedy, &ctx).unwrap_err();
    assert_eq!(err, FlockError::Engine(EngineError::Cancelled));
}

#[test]
fn governed_failure_leaves_catalog_untouched() {
    let db = basket_db();
    let before = snapshot(&db);
    let ctx = ExecContext::unbounded().with_max_rows(5_000);
    evaluate_direct_with(&explosive_flock(), &db, JoinOrderStrategy::Greedy, &ctx).unwrap_err();
    assert_eq!(snapshot(&db), before);
}

#[test]
fn governed_success_matches_ungoverned() {
    let db = basket_db();
    let flock = pairs_flock();
    let free = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
    let ctx = ExecContext::unbounded().with_max_rows(10_000_000);
    let governed = evaluate_direct_with(&flock, &db, JoinOrderStrategy::Greedy, &ctx).unwrap();
    assert_eq!(governed, free);
    let stats = ctx.stats();
    assert!(stats.rows > 0, "accounting should have charged rows");
    assert!(stats.bytes > 0);
}

#[test]
fn concurrent_execution_respects_row_budget() {
    // Workers charge the shared atomic counters before materializing,
    // so a multi-thread run still trips the budget; overshoot is
    // bounded by one in-flight charge per worker.
    let db = basket_db();
    let limit = 20_000u64;
    let ctx = ExecContext::unbounded()
        .with_threads(4)
        .with_max_rows(limit);
    let err =
        evaluate_direct_with(&explosive_flock(), &db, JoinOrderStrategy::Greedy, &ctx).unwrap_err();
    assert!(
        matches!(
            err,
            FlockError::Engine(EngineError::ResourceExhausted {
                resource: Resource::Rows,
                limit: 20_000,
                ..
            })
        ),
        "{err:?}"
    );
    let stats = ctx.stats();
    let workers = stats.workers.max(1);
    assert!(
        stats.rows <= limit + workers,
        "counted {} rows under a {limit}-row budget with {workers} workers",
        stats.rows
    );
}

#[test]
fn concurrent_success_matches_single_thread() {
    let db = basket_db();
    let flock = pairs_flock();
    let one = evaluate_direct_with(
        &flock,
        &db,
        JoinOrderStrategy::Greedy,
        &ExecContext::unbounded().with_threads(1),
    )
    .unwrap();
    let four = evaluate_direct_with(
        &flock,
        &db,
        JoinOrderStrategy::Greedy,
        &ExecContext::unbounded().with_threads(4),
    )
    .unwrap();
    assert_eq!(one, four);
}

#[test]
fn plan_search_timeout_degrades_to_static_heuristic() {
    let db = basket_db();
    let flock = pairs_flock();
    let ctx = ExecContext::unbounded().with_timeout(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    // Degrades instead of failing: the §4 static heuristic plan comes
    // back, with the abandonment recorded for the caller to surface.
    let (plan, _cost) = best_plan_with(&flock, &db, &ctx).unwrap();
    assert!(!plan.steps.is_empty());
    let stats = ctx.stats();
    assert!(
        stats.degradations.iter().any(|d| d.stage == "plan-search"),
        "{:?}",
        stats.degradations
    );
}

/// Fault-injection acceptance: fail the Nth operator invocation for
/// every N the pipeline reaches, proving each operator propagates a
/// mid-pipeline error without panicking and without touching the
/// catalog.
#[cfg(feature = "fault-injection")]
#[test]
fn every_operator_invocation_propagates_injected_faults() {
    let db = basket_db();
    let flock = pairs_flock();
    let before = snapshot(&db);
    let mut operators_hit = std::collections::BTreeSet::new();
    let mut n = 1u64;
    loop {
        let ctx = ExecContext::unbounded().with_fault_point(n);
        match evaluate_direct_with(&flock, &db, JoinOrderStrategy::Greedy, &ctx) {
            Err(FlockError::Engine(EngineError::FaultInjected {
                operator,
                invocation,
            })) => {
                assert_eq!(invocation, n);
                operators_hit.insert(operator);
            }
            // The fault point lies beyond the pipeline's total operator
            // count: the whole pipeline has been swept.
            Ok(result) => {
                assert!(!result.is_empty(), "pairs flock should find pairs");
                break;
            }
            Err(e) => panic!("fault at invocation {n} surfaced as unexpected error: {e}"),
        }
        assert_eq!(
            snapshot(&db),
            before,
            "fault at invocation {n} mutated the catalog"
        );
        n += 1;
        assert!(n < 1_000, "runaway: pipeline never completed");
    }
    assert!(n > 1, "pipeline should invoke at least one operator");
    assert!(
        operators_hit.len() >= 3,
        "expected faults across several distinct operators, got {operators_hit:?}"
    );
}
