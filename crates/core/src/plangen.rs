//! Plan generation: the generalized a-priori optimization (§3–§4).
//!
//! Generators, in increasing ambition:
//!
//! * [`direct_plan`] — the one-step plan (no pruning); the baseline.
//! * [`single_param_plan`] — §4.3 heuristic 1 restricted to singleton
//!   parameter sets: one reduction per parameter, as in Fig. 5's
//!   `okS`/`okM`.
//! * [`param_set_plan`] — heuristic 1 in general: one reduction per
//!   chosen parameter set, each backed by the cheapest safe subquery
//!   with exactly that set.
//! * [`chain_plan`] — the Fig. 7 shape: a chain of steps over growing
//!   prefixes of the body, each consuming the previous step's output —
//!   the construction that makes the plan space super-exponential
//!   (Ex. 4.3).
//! * [`enumerate_plans`] / [`best_plan`] — the §4.3 "exponential
//!   search": enumerate plans over subsets of parameter sets, cost each
//!   with the [`estimate_plan_cost`] model, keep the cheapest.

use std::collections::BTreeSet;

use qf_datalog::{is_safe, safe_subqueries_with_params, ConjunctiveQuery, UnionQuery};
use qf_engine::{cost_with, estimate_with, Estimate, MapStats};
use qf_storage::{Database, Symbol};

use crate::compile::{compile_answer, JoinOrderStrategy};
use crate::error::{FlockError, Result};
use crate::filter::FilterAgg;
use crate::flock::QueryFlock;
use crate::plan::{final_step, FilterStep, QueryPlan};

/// Name used for the final step of generated plans.
pub const FINAL_STEP_NAME: &str = "flock_result_step";

/// Cap on the number of plans [`enumerate_plans`] returns.
pub const MAX_ENUMERATED_PLANS: usize = 4096;

/// The trivial one-step plan: the original query, original filter.
pub fn direct_plan(flock: &QueryFlock) -> Result<QueryPlan> {
    let only = final_step(flock, &[], FINAL_STEP_NAME)?;
    QueryPlan::new(flock.clone(), vec![only])
}

/// All candidate reduction steps restricting exactly `set`: one safe
/// subquery chosen per union branch (§3.4), all with parameter set
/// `set`. Returns the cartesian combinations, capped at `cap`.
pub fn candidate_steps(
    flock: &QueryFlock,
    set: &BTreeSet<Symbol>,
    cap: usize,
) -> Result<Vec<FilterStep>> {
    let per_rule: Vec<Vec<ConjunctiveQuery>> = flock
        .query()
        .rules()
        .iter()
        .map(|r| {
            safe_subqueries_with_params(r, set)
                .into_iter()
                .map(|s| s.query)
                .collect::<Vec<_>>()
        })
        .collect();
    if per_rule.iter().any(Vec::is_empty) {
        return Ok(Vec::new()); // some branch has no safe subquery for this set.
    }
    let name = step_name(set);
    let mut combos: Vec<Vec<ConjunctiveQuery>> = vec![Vec::new()];
    for options in &per_rule {
        let mut next = Vec::new();
        'outer: for combo in &combos {
            for opt in options {
                let mut c = combo.clone();
                c.push(opt.clone());
                next.push(c);
                if next.len() >= cap {
                    break 'outer;
                }
            }
        }
        combos = next;
    }
    combos
        .into_iter()
        .map(|rules| Ok(FilterStep::new(&name, UnionQuery::new(rules)?)))
        .collect()
}

fn step_name(set: &BTreeSet<Symbol>) -> String {
    let mut name = String::from("ok");
    for p in set {
        name.push('_');
        name.push_str(&p.to_string());
    }
    name
}

/// The cheapest candidate step for `set` under the cost model, if any.
pub fn best_candidate_step(
    flock: &QueryFlock,
    db: &Database,
    set: &BTreeSet<Symbol>,
) -> Result<Option<FilterStep>> {
    let mut best: Option<(f64, FilterStep)> = None;
    for step in candidate_steps(flock, set, 64)? {
        let compiled = compile_answer(&step.query, db, JoinOrderStrategy::Greedy)?;
        let cost = cost_with(&compiled.plan, db)?;
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, step));
        }
    }
    Ok(best.map(|(_, s)| s))
}

/// Heuristic 1 with singleton sets (the Fig. 5 shape): one reduction
/// per parameter, using the cheapest safe single-parameter subquery.
/// Parameters with no safe singleton subquery are skipped.
pub fn single_param_plan(flock: &QueryFlock, db: &Database) -> Result<QueryPlan> {
    let sets: Vec<BTreeSet<Symbol>> = flock
        .params()
        .into_iter()
        .map(|p| [p].into_iter().collect())
        .collect();
    param_set_plan(flock, db, &sets)
}

/// Heuristic 1 in general: one reduction per set in `sets` (sets with
/// no safe subquery are skipped), then the final step using them all.
pub fn param_set_plan(
    flock: &QueryFlock,
    db: &Database,
    sets: &[BTreeSet<Symbol>],
) -> Result<QueryPlan> {
    let mut reductions = Vec::new();
    for set in sets {
        if let Some(step) = best_candidate_step(flock, db, set)? {
            reductions.push(step);
        }
    }
    let last = final_step(flock, &reductions, FINAL_STEP_NAME)?;
    let mut steps = reductions;
    steps.push(last);
    QueryPlan::new(flock.clone(), steps)
}

/// The Fig. 7 chain: for a single-rule flock, a step per safe body
/// prefix whose parameter set equals the flock's, each adding the
/// previous step's output, ending with the full query.
pub fn chain_plan(flock: &QueryFlock) -> Result<QueryPlan> {
    let Some(rule) = flock.single_rule() else {
        return Err(FlockError::IllegalPlan {
            detail: "chain plans are defined for single-rule flocks".to_string(),
        });
    };
    let rule = rule.clone();
    let flock_params = flock.params();
    let mut steps: Vec<FilterStep> = Vec::new();
    for plen in 1..rule.body.len() {
        let kept: Vec<usize> = (0..plen).collect();
        let prefix = rule.restrict(&kept);
        if prefix.params() != flock_params || !is_safe(&prefix) {
            continue;
        }
        let with_prior = match steps.last() {
            Some(prev) => prefix.with_extra(vec![prev.head_subgoal()]),
            None => prefix,
        };
        let name = format!("ok{}", steps.len());
        steps.push(FilterStep::new(name, UnionQuery::single(with_prior)?));
    }
    // Final step adds only the last reduction (its predecessor chain is
    // already folded in transitively).
    let last_reduction: Vec<FilterStep> = steps.last().cloned().into_iter().collect();
    let final_ = final_step(flock, &last_reduction, FINAL_STEP_NAME)?;
    steps.push(final_);
    QueryPlan::new(flock.clone(), steps)
}

/// Enumerate plans per §4.3 heuristic 1: every subset of the nonempty
/// parameter sets (each backed by its cheapest candidate subquery),
/// capped at [`MAX_ENUMERATED_PLANS`]. The direct plan is always
/// included (the empty subset).
pub fn enumerate_plans(flock: &QueryFlock, db: &Database) -> Result<Vec<QueryPlan>> {
    let params: Vec<Symbol> = flock.params().into_iter().collect();
    // All nonempty subsets of the parameter set.
    let mut sets: Vec<BTreeSet<Symbol>> = Vec::new();
    let n = params.len().min(10);
    for mask in 1u32..(1 << n) {
        let set: BTreeSet<Symbol> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| params[i])
            .collect();
        sets.push(set);
    }
    // Best candidate per set (sets without candidates drop out).
    let mut options: Vec<FilterStep> = Vec::new();
    for set in &sets {
        if let Some(step) = best_candidate_step(flock, db, set)? {
            options.push(step);
        }
    }
    let k = options.len().min(12);
    let mut plans = Vec::new();
    for mask in 0u32..(1 << k) {
        if plans.len() >= MAX_ENUMERATED_PLANS {
            break;
        }
        let reductions: Vec<FilterStep> = (0..k)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| options[i].clone())
            .collect();
        let last = final_step(flock, &reductions, FINAL_STEP_NAME)?;
        let mut steps = reductions;
        steps.push(last);
        plans.push(QueryPlan::new(flock.clone(), steps)?);
    }
    Ok(plans)
}

/// Predicted statistics of one `FILTER` step.
#[derive(Clone, Debug)]
pub struct StepEstimate {
    /// Step (output relation) name.
    pub name: String,
    /// Estimated tuples in the step's extended answer.
    pub answer_rows: f64,
    /// Estimated distinct parameter assignments (groups).
    pub groups: f64,
    /// Estimated assignments surviving the filter.
    pub survivors: f64,
    /// Estimated cost of the step (`C_out` of its plan plus the
    /// aggregation pass).
    pub cost: f64,
}

/// Predicted cost breakdown of a whole plan.
#[derive(Clone, Debug)]
pub struct PlanCostReport {
    /// Per-step predictions, in execution order.
    pub steps: Vec<StepEstimate>,
}

impl PlanCostReport {
    /// Total predicted cost across steps.
    pub fn total(&self) -> f64 {
        self.steps.iter().map(|s| s.cost).sum()
    }

    /// Render a compact EXPLAIN-style table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from(
            "step                 answer~      groups~   survivors~        cost~
",
        );
        for s in &self.steps {
            let _ = writeln!(
                out,
                "{:<20} {:>8.0} {:>12.0} {:>12.0} {:>12.0}",
                s.name, s.answer_rows, s.groups, s.survivors, s.cost
            );
        }
        let _ = writeln!(out, "total predicted cost: {:.0} tuples", self.total());
        out
    }
}

/// Estimate a plan's total cost (tuples materialized across all steps),
/// predicting each step's output statistics from the support threshold
/// so later steps see the benefit of earlier pruning.
pub fn estimate_plan_cost(
    plan: &QueryPlan,
    db: &Database,
    strategy: JoinOrderStrategy,
) -> Result<f64> {
    Ok(estimate_plan_report(plan, db, strategy)?.total())
}

/// Per-step cost prediction (the breakdown behind
/// [`estimate_plan_cost`]).
pub fn estimate_plan_report(
    plan: &QueryPlan,
    db: &Database,
    strategy: JoinOrderStrategy,
) -> Result<PlanCostReport> {
    let mut stats = MapStats::with_fallback(db);
    let threshold = plan.flock.filter().threshold.max(1) as f64;
    let support_like = matches!(plan.flock.filter().agg, FilterAgg::Count);
    let mut steps = Vec::with_capacity(plan.steps.len());
    for step in &plan.steps {
        let compiled = compile_answer(&step.query, db, strategy)?;
        let answer_est: Estimate = estimate_with(&compiled.plan, &stats)?;
        let step_cost = cost_with(&compiled.plan, &stats)? + answer_est.rows;

        // Predict the step's output: groups that survive the filter.
        let group_cols: Vec<usize> = (0..compiled.n_params).collect();
        let groups = answer_est.group_count(&group_cols);
        let survivors = if support_like {
            // At most `answer_rows / threshold` groups can hold
            // `threshold` or more tuples.
            (answer_est.rows / threshold).min(groups)
        } else {
            groups * 0.5
        };
        let distinct: Vec<f64> = group_cols
            .iter()
            .map(|&c| answer_est.distinct[c].min(survivors.max(1.0)))
            .collect();
        stats.insert(
            step.output.clone(),
            Estimate {
                rows: survivors,
                distinct,
            },
        );
        steps.push(StepEstimate {
            name: step.output.clone(),
            answer_rows: answer_est.rows,
            groups,
            survivors,
            cost: step_cost,
        });
    }
    Ok(PlanCostReport { steps })
}

/// Enumerate plans and return the one with the lowest estimated cost,
/// with that cost.
pub fn best_plan(flock: &QueryFlock, db: &Database) -> Result<(QueryPlan, f64)> {
    best_plan_with(flock, db, &qf_engine::ExecContext::unbounded())
}

/// [`best_plan`] under an execution governor, with **graceful
/// degradation**: the §4.3 plan search is exponential in the number of
/// candidate reductions, so when `ctx`'s deadline expires (or its
/// cancel token trips) mid-search, the search is abandoned and the §4
/// static heuristic plan ([`single_param_plan`], the Fig. 5 shape) is
/// returned instead of an error. The fallback is recorded as a
/// `"plan-search"` degradation in the governor's stats.
pub fn best_plan_with(
    flock: &QueryFlock,
    db: &Database,
    ctx: &qf_engine::ExecContext,
) -> Result<(QueryPlan, f64)> {
    if !ctx.time_exhausted() {
        let mut best: Option<(QueryPlan, f64)> = None;
        let mut abandoned = false;
        for plan in enumerate_plans(flock, db)? {
            if ctx.time_exhausted() {
                abandoned = true;
                break;
            }
            let cost = estimate_plan_cost(&plan, db, JoinOrderStrategy::Greedy)?;
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
        if !abandoned {
            return best.ok_or_else(|| FlockError::IllegalPlan {
                detail: "no plans enumerated".to_string(),
            });
        }
    }
    ctx.record_degradation(
        "plan-search",
        "time budget exhausted during §4.3 plan enumeration; \
         falling back to the §4 static heuristic plan",
    );
    let plan = single_param_plan(flock, db)?;
    let cost = estimate_plan_cost(&plan, db, JoinOrderStrategy::Greedy)?;
    Ok((plan, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_plan;
    use qf_storage::{Relation, Schema, Value};

    fn basket_db(skew: bool) -> Database {
        // 40 baskets, each holding the hot pair; with `skew`, each
        // basket additionally holds 10 singleton items, so the naive
        // self-join blows up on rare items while only the hot pair has
        // support — the regime where the a-priori rewrite pays.
        let mut rows = Vec::new();
        for b in 0..40i64 {
            rows.push(vec![Value::int(b), Value::str("hot1")]);
            rows.push(vec![Value::int(b), Value::str("hot2")]);
            if skew {
                for j in 0..10i64 {
                    rows.push(vec![Value::int(b), Value::str(&format!("rare_{b}_{j}"))]);
                }
            }
        }
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows,
        ));
        db
    }

    fn basket_flock(threshold: i64) -> QueryFlock {
        QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            threshold,
        )
        .unwrap()
    }

    #[test]
    fn direct_plan_has_one_step() {
        let plan = direct_plan(&basket_flock(20)).unwrap();
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn single_param_plan_builds_two_reductions() {
        let db = basket_db(true);
        let plan = single_param_plan(&basket_flock(20), &db).unwrap();
        assert_eq!(plan.len(), 3); // ok_1, ok_2, final
        let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(run.result.len(), 1); // (hot1, hot2)
                                         // The reductions eliminated the rare items.
        assert!(run.steps[0].elimination_rate() > 0.9);
    }

    #[test]
    fn all_generated_plans_agree_with_direct() {
        let db = basket_db(true);
        let flock = basket_flock(10);
        let direct = crate::eval::evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        for plan in enumerate_plans(&flock, &db).unwrap() {
            let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
            assert_eq!(
                run.result.tuples(),
                direct.tuples(),
                "plan disagrees:\n{plan}"
            );
        }
    }

    #[test]
    fn enumerate_includes_direct_and_pruned() {
        let db = basket_db(false);
        let plans = enumerate_plans(&basket_flock(20), &db).unwrap();
        // 3 param sets ({1},{2},{1,2}) each with candidates → 8 plans.
        assert_eq!(plans.len(), 8);
        assert!(plans.iter().any(|p| p.len() == 1));
        assert!(plans.iter().any(|p| p.len() == 4));
    }

    #[test]
    fn best_plan_prefers_pruning_on_skewed_data() {
        let db = basket_db(true);
        let (best, best_cost) = best_plan(&basket_flock(20), &db).unwrap();
        let direct_cost = estimate_plan_cost(
            &direct_plan(&basket_flock(20)).unwrap(),
            &db,
            JoinOrderStrategy::Greedy,
        )
        .unwrap();
        assert!(best.len() > 1, "skewed data should reward prefiltering");
        assert!(best_cost <= direct_cost);
    }

    #[test]
    fn chain_plan_for_path_query() {
        let flock =
            QueryFlock::with_support("answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2)", 2)
                .unwrap();
        let plan = chain_plan(&flock).unwrap();
        // ok0 (arc($1,X)), ok1 (+arc(X,Y1)), final — the Fig. 7 shape.
        assert_eq!(plan.len(), 3);
        assert!(plan.steps[1].query.rules()[0]
            .to_string()
            .contains("ok0($1)"));

        // Execute against a small graph and compare with direct.
        let mut db = Database::new();
        let mut rows = Vec::new();
        // Node 0 → 1..=3; 1 → 4,5; 4 → 6,7; others dead-end.
        for (s, t) in [(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (4, 6), (4, 7)] {
            rows.push(vec![Value::int(s), Value::int(t)]);
        }
        db.insert(Relation::from_rows(Schema::new("arc", &["s", "t"]), rows));
        let run = execute_plan(&plan, &db, JoinOrderStrategy::AsWritten).unwrap();
        let direct =
            crate::eval::evaluate_direct(&flock, &db, JoinOrderStrategy::AsWritten).unwrap();
        assert_eq!(run.result.tuples(), direct.tuples());
    }

    #[test]
    fn plan_report_breaks_down_cost() {
        let db = basket_db(true);
        let flock = basket_flock(20);
        let plan = single_param_plan(&flock, &db).unwrap();
        let report = estimate_plan_report(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(report.steps.len(), plan.len());
        let total: f64 = report.steps.iter().map(|s| s.cost).sum();
        assert!((report.total() - total).abs() < 1e-9);
        assert_eq!(
            report.total(),
            estimate_plan_cost(&plan, &db, JoinOrderStrategy::Greedy).unwrap()
        );
        // Prefilter survivors must be far below their group counts on
        // skewed data.
        let first = &report.steps[0];
        assert!(first.survivors < first.groups / 2.0, "{first:?}");
        // Rendering mentions every step.
        let text = report.render();
        for s in &report.steps {
            assert!(text.contains(&s.name), "{text}");
        }
    }

    #[test]
    fn cost_model_sees_pruning_benefit() {
        let db = basket_db(true);
        let flock = basket_flock(20);
        let pruned = single_param_plan(&flock, &db).unwrap();
        let c_direct = estimate_plan_cost(
            &direct_plan(&flock).unwrap(),
            &db,
            JoinOrderStrategy::Greedy,
        )
        .unwrap();
        let c_pruned = estimate_plan_cost(&pruned, &db, JoinOrderStrategy::Greedy).unwrap();
        assert!(
            c_pruned < c_direct,
            "pruned {c_pruned} should beat direct {c_direct} on skewed data"
        );
    }
}
