//! Crash-safe run journal for `FILTER`-step execution.
//!
//! A [`RunJournal`] lives in a run directory and records each completed
//! `FILTER` step durably: the step's output relation is snapshotted
//! (via [`qf_storage::spill::write_relation`] — the same on-disk tuple
//! encoding the spill path uses), then a log line naming the step and
//! the snapshot's content hash is appended and fsynced. A process
//! killed at *any* point — mid-snapshot, mid-append, between steps —
//! leaves a journal from which the next run resumes: completed steps
//! are replayed from their snapshots instead of re-evaluated, and the
//! final result is bitwise-identical to an uninterrupted run.
//!
//! Two fingerprints guard against resuming the wrong work:
//!
//! * the **plan fingerprint** — a hash of the rendered plan text (or a
//!   strategy-tagged flock rendering for single-shot strategies); and
//! * the **catalog fingerprint** — a hash over every base relation's
//!   name, column names, and tuple content, in sorted-name order.
//!
//! Both are stored in `journal.meta` when the journal is created and
//! validated on every subsequent open; a mismatch (edited query,
//! changed data) fails with a clean [`FlockError::Journal`] instead of
//! silently splicing stale step outputs into a different computation.
//!
//! Crash-consistency discipline:
//!
//! * snapshots are written to a temp name, fsynced, then renamed into
//!   place — a torn snapshot is never visible under its final name;
//! * the log line is appended (and fsynced) only *after* the rename, so
//!   every logged step has a durable snapshot;
//! * a trailing partial log line (torn append) is ignored on replay; a
//!   malformed *interior* line truncates the trusted log there (the
//!   contiguous-prefix rule then discards everything after the damage);
//! * on load, every snapshot byte is frame-checksummed by the storage
//!   layer and the content hash is checked against the logged value;
//!   either failure surfaces as [`FlockError::SnapshotCorrupt`], which
//!   replay answers by truncating the replayable prefix — corruption is
//!   detected and recomputed, never propagated;
//! * a `journal.lock` file (holding the owner's PID) is taken on open,
//!   so two *processes* cannot resume the same run directory; locks
//!   left by dead processes are reclaimed, and re-opens from the owning
//!   process are allowed (resume within one process);
//! * orphaned `*.tmp` files — a crash between snapshot write and rename
//!   — are swept on open;
//! * a torn or unparsable `journal.meta` means nothing in the directory
//!   can be trusted: the journal state is wiped and reinitialized (a
//!   *well-formed* meta whose fingerprints mismatch is still a hard
//!   error — that's a different query or different data, not damage).
//!
//! All file I/O goes through a [`Vfs`], so the chaos backend can
//! exercise every one of those paths deterministically.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use qf_storage::spill::{content_hash, read_relation_on, write_relation_on, Fnv1a};
use qf_storage::vfs::real_fs;
use qf_storage::{Database, Relation, StorageError, Vfs};

use crate::error::{FlockError, Result};
use crate::plan::QueryPlan;

const META_FILE: &str = "journal.meta";
const LOG_FILE: &str = "journal.log";
const LOCK_FILE: &str = "journal.lock";
const FORMAT: &str = "qf-journal v1";

/// Transient I/O errors absorbed per journal write before giving up.
const MAX_IO_RETRIES: u32 = 3;

/// Fingerprint of arbitrary plan/strategy text (FNV-1a, process-stable).
pub fn fingerprint_text(text: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(text.as_bytes());
    h.finish()
}

/// Fingerprint of a [`QueryPlan`]: a hash of its rendered Fig. 5-style
/// text, which covers every step's query, output name, and the flock's
/// filter condition.
pub fn plan_fingerprint(plan: &QueryPlan) -> u64 {
    fingerprint_text(&plan.render())
}

/// Fingerprint of the input catalog: every relation's name, column
/// names, and tuple content, folded in sorted-name order so iteration
/// order cannot perturb it. Delegates to the catalog's **memoized**
/// fingerprint ([`Database::fingerprint`]): the hash is computed once
/// per catalog mutation, not once per journaled run.
pub fn catalog_fingerprint(db: &Database) -> u64 {
    db.fingerprint()
}

/// One completed step as recorded in `journal.log`.
#[derive(Debug, Clone)]
struct StepRecord {
    name: String,
    hash: u64,
}

/// A durable journal of completed `FILTER` steps in a run directory.
///
/// See the [module docs](self) for the format and crash-consistency
/// guarantees.
#[derive(Debug)]
pub struct RunJournal {
    dir: PathBuf,
    completed: BTreeMap<usize, StepRecord>,
    vfs: Arc<dyn Vfs>,
    /// The lock file this instance owns (absent when the lock was
    /// already held by this process — reentrant opens don't own it).
    lock: Option<PathBuf>,
    /// Transient I/O errors absorbed by bounded retry since the last
    /// [`RunJournal::take_io_retries`].
    io_retries: u64,
}

impl RunJournal {
    /// Open (or create) the journal in `dir` on the real filesystem,
    /// validating that any existing journal was written for the same
    /// plan and catalog.
    pub fn open(dir: &Path, plan_fp: u64, catalog_fp: u64) -> Result<RunJournal> {
        RunJournal::open_on(real_fs(), dir, plan_fp, catalog_fp)
    }

    /// [`RunJournal::open`] on an explicit [`Vfs`] backend.
    pub fn open_on(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        plan_fp: u64,
        catalog_fp: u64,
    ) -> Result<RunJournal> {
        vfs.create_dir_all(dir)
            .map_err(|e| io_err("create run directory", dir, &e))?;
        let lock = acquire_lock(&*vfs, dir)?;
        // A crash between snapshot write and rename leaves a `*.tmp`
        // orphan; nothing references it, so sweep it.
        if let Ok(entries) = vfs.read_dir(dir) {
            for p in entries {
                if p.extension().is_some_and(|e| e == "tmp") {
                    let _ = vfs.remove_file(&p);
                }
            }
        }
        let meta_path = dir.join(META_FILE);
        let mut existing_meta = if vfs.exists(&meta_path) {
            Some(
                vfs.read_to_string(&meta_path)
                    .map_err(|e| io_err("read journal.meta", &meta_path, &e))?,
            )
        } else {
            None
        };
        if let Some(text) = &existing_meta {
            match parse_meta(text) {
                Some((plan, catalog)) => check_fingerprints(plan, catalog, plan_fp, catalog_fp)?,
                None => {
                    // Torn or corrupt meta: nothing in this directory
                    // can be validated against it. Wipe the journal
                    // state and start fresh rather than resuming from
                    // an unverifiable directory.
                    wipe_journal_state(&*vfs, dir);
                    existing_meta = None;
                }
            }
        }
        if existing_meta.is_none() {
            write_meta(&*vfs, dir, plan_fp, catalog_fp)?;
        }
        let completed = read_log(&*vfs, &dir.join(LOG_FILE))?;
        Ok(RunJournal {
            dir: dir.to_path_buf(),
            completed,
            vfs,
            lock,
            io_retries: 0,
        })
    }

    /// The run directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of steps recorded as completed.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// True when step `idx` has a durable record.
    pub fn is_completed(&self, idx: usize) -> bool {
        self.completed.contains_key(&idx)
    }

    /// Length of the contiguous completed prefix `0..n` (capped at
    /// `total`). Steps are journaled in plan order, so anything past a
    /// gap (which only a corrupted log can produce) is not trusted.
    pub fn contiguous_prefix(&self, total: usize) -> usize {
        let mut n = 0;
        while n < total && self.completed.contains_key(&n) {
            n += 1;
        }
        n
    }

    /// Load the snapshot of completed step `idx`, verifying its content
    /// hash against the logged value. Any integrity failure — a frame
    /// checksum caught by the storage layer, a missing snapshot, a
    /// name or content-hash mismatch — surfaces as
    /// [`FlockError::SnapshotCorrupt`] so replay can truncate the
    /// prefix instead of failing the run.
    pub fn load_step(&self, idx: usize) -> Result<Relation> {
        let rec = self
            .completed
            .get(&idx)
            .ok_or_else(|| FlockError::Journal {
                detail: format!("step {idx} is not recorded as completed"),
            })?;
        let path = self.snapshot_path(idx);
        let corrupt = |detail: String| FlockError::SnapshotCorrupt { step: idx, detail };
        let rel = match read_relation_on(&*self.vfs, &path) {
            Ok(rel) => rel,
            Err(e)
                if e.is_corruption()
                    || matches!(e, StorageError::Malformed { .. })
                    || matches!(&e, StorageError::Io { kind, .. }
                        if *kind == std::io::ErrorKind::NotFound) =>
            {
                return Err(corrupt(format!("read snapshot {}: {e}", path.display())));
            }
            Err(e) => {
                return Err(FlockError::Journal {
                    detail: format!("read snapshot {}: {e}", path.display()),
                });
            }
        };
        // The content hash deliberately excludes the relation name (a
        // rename should not invalidate a journal written by the same
        // plan), so cross-check the journaled name separately.
        if rel.name() != rec.name {
            return Err(corrupt(format!(
                "snapshot {} holds relation `{}` but the journal expects `{}`",
                path.display(),
                rel.name(),
                rec.name
            )));
        }
        let got = content_hash(&rel);
        if got != rec.hash {
            return Err(corrupt(format!(
                "snapshot {} content hash {got:016x} does not match journaled {:016x}",
                path.display(),
                rec.hash
            )));
        }
        Ok(rel)
    }

    /// Durably record step `idx` as completed with output `rel`:
    /// snapshot (temp + fsync + rename), then log append + fsync.
    ///
    /// The snapshot write is retried (bounded, whole-file — the temp
    /// file is discarded and rewritten) on transient errors; the log
    /// append is attempted once, because a partially applied append
    /// retried would corrupt the log. Any failure here leaves the
    /// journal exactly as it was — the step is simply not recorded —
    /// so callers can treat journaling as advisory and keep running.
    pub fn record_step(&mut self, idx: usize, rel: &Relation) -> Result<()> {
        let path = self.snapshot_path(idx);
        let tmp = self.dir.join(format!("step-{idx}.qfr.tmp"));
        let mut attempt = 0u32;
        loop {
            match write_relation_on(&*self.vfs, &tmp, rel) {
                Ok(_) => break,
                Err(e) => {
                    let _ = self.vfs.remove_file(&tmp);
                    if e.is_transient() && attempt < MAX_IO_RETRIES {
                        attempt += 1;
                        self.io_retries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(1 << attempt.min(4)));
                    } else {
                        return Err(FlockError::Journal {
                            detail: format!("write snapshot {}: {e}", tmp.display()),
                        });
                    }
                }
            }
        }
        self.vfs
            .rename(&tmp, &path)
            .map_err(|e| io_err("publish snapshot", &path, &e))?;
        let hash = content_hash(rel);
        let log_path = self.dir.join(LOG_FILE);
        let mut f = self
            .vfs
            .append(&log_path)
            .map_err(|e| io_err("open journal.log", &log_path, &e))?;
        // Tab-separated; the step name goes last so it cannot confuse
        // the fixed fields even if it were to contain tabs.
        writeln!(f, "step\t{idx}\t{hash:016x}\t{}", rel.name())
            .and_then(|()| f.flush())
            .and_then(|()| f.sync_all())
            .map_err(|e| io_err("append journal.log", &log_path, &e))?;
        self.completed.insert(
            idx,
            StepRecord {
                name: rel.name().to_string(),
                hash,
            },
        );
        Ok(())
    }

    /// Drain the count of transient errors absorbed by retries since
    /// the last call (for surfacing in execution stats).
    pub fn take_io_retries(&mut self) -> u64 {
        std::mem::take(&mut self.io_retries)
    }

    fn snapshot_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("step-{idx}.qfr"))
    }
}

impl Drop for RunJournal {
    fn drop(&mut self) {
        if let Some(lock) = &self.lock {
            let _ = self.vfs.remove_file(lock);
        }
    }
}

/// Take the journal-directory lock. Returns the lock path when this
/// call created (and therefore owns) the lock; `None` when the lock is
/// already held by *this* process (reentrant open — the earlier owner
/// keeps responsibility for removal). A lock held by a process that no
/// longer exists is reclaimed; one held by a live foreign process is a
/// hard error. The PID-lock mechanics (dead-owner reclaim, same-pid
/// reentrancy) are shared with the catalog WAL via
/// [`qf_storage::wal::acquire_pid_lock`].
fn acquire_lock(vfs: &dyn Vfs, dir: &Path) -> Result<Option<PathBuf>> {
    qf_storage::wal::acquire_pid_lock(vfs, &dir.join(LOCK_FILE)).map_err(|e| FlockError::Journal {
        detail: format!("journal directory {}: {e}", dir.display()),
    })
}

/// Remove every piece of journal state (meta, log, snapshots) except
/// the lock file — used when `journal.meta` is unverifiable.
fn wipe_journal_state(vfs: &dyn Vfs, dir: &Path) {
    if let Ok(entries) = vfs.read_dir(dir) {
        for p in entries {
            if p.file_name().is_some_and(|n| n == LOCK_FILE) {
                continue;
            }
            let _ = vfs.remove_file(&p);
        }
    }
}

/// Write a fresh `journal.meta` through a temp file + fsync + rename so
/// a crash mid-write never leaves a half-written meta under the final
/// name.
fn write_meta(vfs: &dyn Vfs, dir: &Path, plan_fp: u64, catalog_fp: u64) -> Result<()> {
    let meta_path = dir.join(META_FILE);
    let tmp = dir.join(format!("{META_FILE}.tmp"));
    let body = format!("{FORMAT}\nplan {plan_fp:016x}\ncatalog {catalog_fp:016x}\n");
    let mut f = vfs
        .create(&tmp)
        .map_err(|e| io_err("create journal.meta", &tmp, &e))?;
    f.write_all(body.as_bytes())
        .and_then(|()| f.flush())
        .and_then(|()| f.sync_all())
        .map_err(|e| io_err("write journal.meta", &tmp, &e))?;
    drop(f);
    vfs.rename(&tmp, &meta_path)
        .map_err(|e| io_err("publish journal.meta", &meta_path, &e))
}

/// Parse `journal.meta` into its `(plan, catalog)` fingerprints.
/// `None` means the file is torn or unparsable — i.e. damage, which the
/// caller answers by wiping and reinitializing (unlike a well-formed
/// meta with *different* fingerprints, which is a hard error).
fn parse_meta(text: &str) -> Option<(u64, u64)> {
    let mut lines = text.lines();
    if lines.next() != Some(FORMAT) {
        return None;
    }
    let mut field = |label: &str| -> Option<u64> {
        lines
            .next()?
            .strip_prefix(label)?
            .strip_prefix(' ')
            .and_then(|s| u64::from_str_radix(s.trim(), 16).ok())
    };
    let plan = field("plan")?;
    let catalog = field("catalog")?;
    Some((plan, catalog))
}

/// A well-formed meta must carry exactly this run's fingerprints; a
/// mismatch means the journal belongs to a different query or different
/// data and must not be resumed from.
fn check_fingerprints(
    got_plan: u64,
    got_catalog: u64,
    plan_fp: u64,
    catalog_fp: u64,
) -> Result<()> {
    let check = |label: &str, got: u64, expected: u64, what: &str| -> Result<()> {
        if got != expected {
            return Err(FlockError::Journal {
                detail: format!(
                    "{label} fingerprint mismatch: journal has {got:016x}, \
                     this run computes {expected:016x} — the {what} changed \
                     since the journal was written"
                ),
            });
        }
        Ok(())
    };
    check("plan", got_plan, plan_fp, "query or plan")?;
    check("catalog", got_catalog, catalog_fp, "input data")
}

/// Parse `journal.log`, tolerating a torn (unterminated) final line. A
/// malformed *interior* line truncates the trusted log at that point —
/// the earlier, well-formed records are kept, and the contiguous-prefix
/// rule discards anything logged after the damage.
fn read_log(vfs: &dyn Vfs, path: &Path) -> Result<BTreeMap<usize, StepRecord>> {
    let mut completed = BTreeMap::new();
    let text = match vfs.read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(completed),
        Err(e) => return Err(io_err("read journal.log", path, &e)),
    };
    let complete_region = match text.rfind('\n') {
        Some(last) => &text[..=last],
        // No terminated line at all: a crash tore the very first append.
        None => "",
    };
    for line in complete_region.lines() {
        let mut fields = line.splitn(4, '\t');
        let (tag, idx, hash, name) = (
            fields.next().unwrap_or(""),
            fields.next().unwrap_or(""),
            fields.next().unwrap_or(""),
            fields.next().unwrap_or(""),
        );
        if tag != "step" {
            continue; // unknown record type: skip, stay forward-compatible
        }
        let (Ok(idx), Ok(hash)) = (idx.parse::<usize>(), u64::from_str_radix(hash, 16)) else {
            // Damaged interior line: everything after it is untrusted.
            break;
        };
        completed.insert(
            idx,
            StepRecord {
                name: name.to_string(),
                hash,
            },
        );
    }
    Ok(completed)
}

fn io_err(action: &str, path: &Path, e: &std::io::Error) -> FlockError {
    FlockError::Journal {
        detail: format!("{action} {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_storage::spill::write_relation;
    use qf_storage::{Schema, Value};
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qf-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rel(name: &str, n: i64) -> Relation {
        Relation::from_rows(
            Schema::new(name, &["x"]),
            (0..n).map(|i| vec![Value::int(i)]).collect(),
        )
    }

    #[test]
    fn record_and_resume_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let (r0, r1) = (rel("s0", 5), rel("s1", 3));
        {
            let mut j = RunJournal::open(&dir, 1, 2).unwrap();
            assert_eq!(j.contiguous_prefix(10), 0);
            j.record_step(0, &r0).unwrap();
            j.record_step(1, &r1).unwrap();
        }
        let j = RunJournal::open(&dir, 1, 2).unwrap();
        assert_eq!(j.contiguous_prefix(10), 2);
        assert_eq!(j.load_step(0).unwrap().tuples(), r0.tuples());
        let got = j.load_step(1).unwrap();
        assert_eq!(got.tuples(), r1.tuples());
        assert_eq!(got.name(), "s1");
        assert_eq!(got.schema().columns(), r1.schema().columns());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let dir = tmp_dir("mismatch");
        RunJournal::open(&dir, 1, 2).unwrap();
        let plan_err = RunJournal::open(&dir, 9, 2).unwrap_err();
        assert!(
            plan_err.to_string().contains("plan fingerprint"),
            "{plan_err}"
        );
        let cat_err = RunJournal::open(&dir, 1, 9).unwrap_err();
        assert!(
            cat_err.to_string().contains("catalog fingerprint"),
            "{cat_err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_log_tail_is_ignored() {
        let dir = tmp_dir("torn");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 4)).unwrap();
        // Simulate a crash mid-append: bytes with no trailing newline.
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(LOG_FILE))
            .unwrap();
        f.write_all(b"step\t1\tdead").unwrap();
        drop(f);
        let j = RunJournal::open(&dir, 1, 2).unwrap();
        assert_eq!(j.contiguous_prefix(10), 1);
        assert!(!j.is_completed(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_is_detected() {
        let dir = tmp_dir("corrupt");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 4)).unwrap();
        // Overwrite the snapshot with a different (valid) relation: the
        // content hash no longer matches the journaled one.
        write_relation(&dir.join("step-0.qfr"), &rel("s0", 5)).unwrap();
        let err = RunJournal::open(&dir, 1, 2)
            .unwrap()
            .load_step(0)
            .unwrap_err();
        assert!(err.to_string().contains("content hash"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_in_log_truncates_prefix() {
        let dir = tmp_dir("gap");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 2)).unwrap();
        j.record_step(2, &rel("s2", 2)).unwrap();
        assert_eq!(j.contiguous_prefix(5), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_is_typed_snapshot_corrupt() {
        let dir = tmp_dir("corrupt-typed");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 4)).unwrap();
        // Flip one byte in the middle of the snapshot payload.
        let path = dir.join("step-0.qfr");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        drop(j);
        let err = RunJournal::open(&dir, 1, 2)
            .unwrap()
            .load_step(0)
            .unwrap_err();
        assert!(
            matches!(err, FlockError::SnapshotCorrupt { step: 0, .. }),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_typed_snapshot_corrupt() {
        let dir = tmp_dir("missing-snap");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 4)).unwrap();
        fs::remove_file(dir.join("step-0.qfr")).unwrap();
        drop(j);
        let err = RunJournal::open(&dir, 1, 2)
            .unwrap()
            .load_step(0)
            .unwrap_err();
        assert!(
            matches!(err, FlockError::SnapshotCorrupt { step: 0, .. }),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_interior_log_line_truncates_there() {
        let dir = tmp_dir("interior");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 2)).unwrap();
        j.record_step(1, &rel("s1", 2)).unwrap();
        j.record_step(2, &rel("s2", 2)).unwrap();
        drop(j);
        // Damage the middle line (step 1): its hash field becomes junk.
        let log = dir.join(LOG_FILE);
        let text = fs::read_to_string(&log).unwrap();
        let damaged: String = text
            .lines()
            .map(|l| {
                if l.contains("\t1\t") {
                    "step\t1\tnothex\ts1".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        fs::write(&log, damaged).unwrap();
        let j = RunJournal::open(&dir, 1, 2).unwrap();
        // Step 0 survives; steps 1 and 2 (after the damage) do not.
        assert_eq!(j.contiguous_prefix(5), 1);
        assert!(!j.is_completed(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_held_by_live_foreign_process_is_rejected() {
        let dir = tmp_dir("lock-live");
        fs::create_dir_all(&dir).unwrap();
        // PID 1 (init) is always alive and never us.
        fs::write(dir.join(LOCK_FILE), "1").unwrap();
        let err = RunJournal::open(&dir, 1, 2).unwrap_err();
        assert!(
            err.to_string().contains("locked by running process"),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_from_dead_process_is_reclaimed() {
        let dir = tmp_dir("lock-stale");
        fs::create_dir_all(&dir).unwrap();
        // A PID far beyond pid_max: certainly not a running process.
        fs::write(dir.join(LOCK_FILE), "4999999").unwrap();
        let j = RunJournal::open(&dir, 1, 2).unwrap();
        // We now own the lock; its content is our PID.
        let holder = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(holder.trim(), std::process::id().to_string());
        drop(j);
        // Dropping the owner removes the lock.
        assert!(!dir.join(LOCK_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_process_reopen_is_reentrant() {
        let dir = tmp_dir("lock-reentrant");
        let owner = RunJournal::open(&dir, 1, 2).unwrap();
        // Second open from the same process succeeds and does NOT own
        // (and therefore does not remove) the lock when dropped.
        let second = RunJournal::open(&dir, 1, 2).unwrap();
        drop(second);
        assert!(dir.join(LOCK_FILE).exists());
        drop(owner);
        assert!(!dir.join(LOCK_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphaned_tmp_snapshots_are_swept_on_open() {
        let dir = tmp_dir("orphan");
        {
            let mut j = RunJournal::open(&dir, 1, 2).unwrap();
            j.record_step(0, &rel("s0", 2)).unwrap();
        }
        // Simulate a crash between snapshot write and rename.
        fs::write(dir.join("step-1.qfr.tmp"), b"torn").unwrap();
        let j = RunJournal::open(&dir, 1, 2).unwrap();
        assert!(!dir.join("step-1.qfr.tmp").exists());
        assert_eq!(j.contiguous_prefix(5), 1); // real state untouched
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_meta_wipes_and_reinitializes() {
        let dir = tmp_dir("torn-meta");
        {
            let mut j = RunJournal::open(&dir, 1, 2).unwrap();
            j.record_step(0, &rel("s0", 2)).unwrap();
        }
        // Truncate the meta mid-line: unparsable.
        fs::write(dir.join(META_FILE), "qf-journal v1\npla").unwrap();
        let j = RunJournal::open(&dir, 1, 2).unwrap();
        // Nothing survived the wipe — the directory restarted fresh.
        assert_eq!(j.contiguous_prefix(5), 0);
        assert!(!dir.join("step-0.qfr").exists());
        drop(j);
        // And the rewritten meta validates on the next open.
        RunJournal::open(&dir, 1, 2).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn catalog_fingerprint_tracks_content_and_names() {
        let mut a = Database::new();
        a.insert(rel("r", 3));
        let fp_a = catalog_fingerprint(&a);
        assert_eq!(fp_a, catalog_fingerprint(&a.clone()));
        let mut b = Database::new();
        b.insert(rel("r", 4)); // different content
        assert_ne!(fp_a, catalog_fingerprint(&b));
        let mut c = Database::new();
        c.insert(rel("q", 3)); // different name
        assert_ne!(fp_a, catalog_fingerprint(&c));
        let mut two = a.clone();
        two.insert(rel("z", 1));
        assert_ne!(fp_a, catalog_fingerprint(&two));
    }
}
