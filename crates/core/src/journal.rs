//! Crash-safe run journal for `FILTER`-step execution.
//!
//! A [`RunJournal`] lives in a run directory and records each completed
//! `FILTER` step durably: the step's output relation is snapshotted
//! (via [`qf_storage::spill::write_relation`] — the same on-disk tuple
//! encoding the spill path uses), then a log line naming the step and
//! the snapshot's content hash is appended and fsynced. A process
//! killed at *any* point — mid-snapshot, mid-append, between steps —
//! leaves a journal from which the next run resumes: completed steps
//! are replayed from their snapshots instead of re-evaluated, and the
//! final result is bitwise-identical to an uninterrupted run.
//!
//! Two fingerprints guard against resuming the wrong work:
//!
//! * the **plan fingerprint** — a hash of the rendered plan text (or a
//!   strategy-tagged flock rendering for single-shot strategies); and
//! * the **catalog fingerprint** — a hash over every base relation's
//!   name, column names, and tuple content, in sorted-name order.
//!
//! Both are stored in `journal.meta` when the journal is created and
//! validated on every subsequent open; a mismatch (edited query,
//! changed data) fails with a clean [`FlockError::Journal`] instead of
//! silently splicing stale step outputs into a different computation.
//!
//! Crash-consistency discipline:
//!
//! * snapshots are written to a temp name, fsynced, then renamed into
//!   place — a torn snapshot is never visible under its final name;
//! * the log line is appended (and fsynced) only *after* the rename, so
//!   every logged step has a durable snapshot;
//! * a trailing partial log line (torn append) is ignored on replay;
//! * on load, the snapshot's content hash is checked against the logged
//!   hash, so disk corruption is detected rather than propagated.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use qf_storage::spill::{content_hash, read_relation, write_relation, Fnv1a};
use qf_storage::{Database, Relation};

use crate::error::{FlockError, Result};
use crate::plan::QueryPlan;

const META_FILE: &str = "journal.meta";
const LOG_FILE: &str = "journal.log";
const FORMAT: &str = "qf-journal v1";

/// Fingerprint of arbitrary plan/strategy text (FNV-1a, process-stable).
pub fn fingerprint_text(text: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(text.as_bytes());
    h.finish()
}

/// Fingerprint of a [`QueryPlan`]: a hash of its rendered Fig. 5-style
/// text, which covers every step's query, output name, and the flock's
/// filter condition.
pub fn plan_fingerprint(plan: &QueryPlan) -> u64 {
    fingerprint_text(&plan.render())
}

/// Fingerprint of the input catalog: every relation's name, column
/// names, and tuple content, folded in sorted-name order so iteration
/// order cannot perturb it.
pub fn catalog_fingerprint(db: &Database) -> u64 {
    let mut names: Vec<&str> = db.names().collect();
    names.sort_unstable();
    let mut h = Fnv1a::new();
    for name in names {
        let rel = db.get(name).expect("name listed by the catalog");
        h.write(name.as_bytes());
        h.write(&[0xff]);
        for c in rel.schema().columns() {
            h.write(c.as_bytes());
            h.write(&[0xfe]);
        }
        h.write(&content_hash(rel).to_le_bytes());
    }
    h.finish()
}

/// One completed step as recorded in `journal.log`.
#[derive(Debug, Clone)]
struct StepRecord {
    name: String,
    hash: u64,
}

/// A durable journal of completed `FILTER` steps in a run directory.
///
/// See the [module docs](self) for the format and crash-consistency
/// guarantees.
#[derive(Debug)]
pub struct RunJournal {
    dir: PathBuf,
    completed: BTreeMap<usize, StepRecord>,
}

impl RunJournal {
    /// Open (or create) the journal in `dir`, validating that any
    /// existing journal was written for the same plan and catalog.
    pub fn open(dir: &Path, plan_fp: u64, catalog_fp: u64) -> Result<RunJournal> {
        fs::create_dir_all(dir).map_err(|e| io_err("create run directory", dir, &e))?;
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            let text = fs::read_to_string(&meta_path)
                .map_err(|e| io_err("read journal.meta", &meta_path, &e))?;
            validate_meta(&text, plan_fp, catalog_fp)?;
        } else {
            // Write the meta through a temp file so a crash mid-write
            // never leaves a half-written (hence unvalidatable) meta.
            let tmp = dir.join(format!("{META_FILE}.tmp"));
            let body = format!("{FORMAT}\nplan {plan_fp:016x}\ncatalog {catalog_fp:016x}\n");
            let mut f =
                fs::File::create(&tmp).map_err(|e| io_err("create journal.meta", &tmp, &e))?;
            f.write_all(body.as_bytes())
                .and_then(|()| f.sync_all())
                .map_err(|e| io_err("write journal.meta", &tmp, &e))?;
            fs::rename(&tmp, &meta_path)
                .map_err(|e| io_err("publish journal.meta", &meta_path, &e))?;
        }
        let completed = read_log(&dir.join(LOG_FILE))?;
        Ok(RunJournal {
            dir: dir.to_path_buf(),
            completed,
        })
    }

    /// The run directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of steps recorded as completed.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// True when step `idx` has a durable record.
    pub fn is_completed(&self, idx: usize) -> bool {
        self.completed.contains_key(&idx)
    }

    /// Length of the contiguous completed prefix `0..n` (capped at
    /// `total`). Steps are journaled in plan order, so anything past a
    /// gap (which only a corrupted log can produce) is not trusted.
    pub fn contiguous_prefix(&self, total: usize) -> usize {
        let mut n = 0;
        while n < total && self.completed.contains_key(&n) {
            n += 1;
        }
        n
    }

    /// Load the snapshot of completed step `idx`, verifying its content
    /// hash against the logged value.
    pub fn load_step(&self, idx: usize) -> Result<Relation> {
        let rec = self
            .completed
            .get(&idx)
            .ok_or_else(|| FlockError::Journal {
                detail: format!("step {idx} is not recorded as completed"),
            })?;
        let path = self.snapshot_path(idx);
        let rel = read_relation(&path).map_err(|e| FlockError::Journal {
            detail: format!("read snapshot {}: {e}", path.display()),
        })?;
        // The content hash deliberately excludes the relation name (a
        // rename should not invalidate a journal written by the same
        // plan), so cross-check the journaled name separately.
        if rel.name() != rec.name {
            return Err(FlockError::Journal {
                detail: format!(
                    "snapshot {} holds relation `{}` but the journal expects `{}`",
                    path.display(),
                    rel.name(),
                    rec.name
                ),
            });
        }
        let got = content_hash(&rel);
        if got != rec.hash {
            return Err(FlockError::Journal {
                detail: format!(
                    "snapshot {} content hash {got:016x} does not match journaled {:016x}",
                    path.display(),
                    rec.hash
                ),
            });
        }
        Ok(rel)
    }

    /// Durably record step `idx` as completed with output `rel`:
    /// snapshot (temp + fsync + rename), then log append + fsync.
    pub fn record_step(&mut self, idx: usize, rel: &Relation) -> Result<()> {
        let path = self.snapshot_path(idx);
        let tmp = self.dir.join(format!("step-{idx}.qfr.tmp"));
        write_relation(&tmp, rel).map_err(|e| FlockError::Journal {
            detail: format!("write snapshot {}: {e}", tmp.display()),
        })?;
        fs::rename(&tmp, &path).map_err(|e| io_err("publish snapshot", &path, &e))?;
        let hash = content_hash(rel);
        let log_path = self.dir.join(LOG_FILE);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| io_err("open journal.log", &log_path, &e))?;
        // Tab-separated; the step name goes last so it cannot confuse
        // the fixed fields even if it were to contain tabs.
        writeln!(f, "step\t{idx}\t{hash:016x}\t{}", rel.name())
            .and_then(|()| f.sync_all())
            .map_err(|e| io_err("append journal.log", &log_path, &e))?;
        self.completed.insert(
            idx,
            StepRecord {
                name: rel.name().to_string(),
                hash,
            },
        );
        Ok(())
    }

    fn snapshot_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("step-{idx}.qfr"))
    }
}

fn validate_meta(text: &str, plan_fp: u64, catalog_fp: u64) -> Result<()> {
    let mut lines = text.lines();
    if lines.next() != Some(FORMAT) {
        return Err(FlockError::Journal {
            detail: format!("unrecognized journal format (expected `{FORMAT}`)"),
        });
    }
    let mut check = |label: &str, expected: u64| -> Result<()> {
        let line = lines.next().unwrap_or("");
        let got = line
            .strip_prefix(label)
            .and_then(|s| s.strip_prefix(' '))
            .and_then(|s| u64::from_str_radix(s.trim(), 16).ok())
            .ok_or_else(|| FlockError::Journal {
                detail: format!("malformed journal.meta line `{line}`"),
            })?;
        if got != expected {
            return Err(FlockError::Journal {
                detail: format!(
                    "{label} fingerprint mismatch: journal has {got:016x}, \
                     this run computes {expected:016x} — the {what} changed \
                     since the journal was written",
                    what = if label == "plan" {
                        "query or plan"
                    } else {
                        "input data"
                    }
                ),
            });
        }
        Ok(())
    };
    check("plan", plan_fp)?;
    check("catalog", catalog_fp)
}

/// Parse `journal.log`, tolerating a torn (unterminated) final line.
fn read_log(path: &Path) -> Result<BTreeMap<usize, StepRecord>> {
    let mut completed = BTreeMap::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(completed),
        Err(e) => return Err(io_err("read journal.log", path, &e)),
    };
    let complete_region = match text.rfind('\n') {
        Some(last) => &text[..=last],
        // No terminated line at all: a crash tore the very first append.
        None => "",
    };
    for line in complete_region.lines() {
        let mut fields = line.splitn(4, '\t');
        let (tag, idx, hash, name) = (
            fields.next().unwrap_or(""),
            fields.next().unwrap_or(""),
            fields.next().unwrap_or(""),
            fields.next().unwrap_or(""),
        );
        if tag != "step" {
            continue; // unknown record type: skip, stay forward-compatible
        }
        let (Ok(idx), Ok(hash)) = (idx.parse::<usize>(), u64::from_str_radix(hash, 16)) else {
            return Err(FlockError::Journal {
                detail: format!("malformed journal.log line `{line}`"),
            });
        };
        completed.insert(
            idx,
            StepRecord {
                name: name.to_string(),
                hash,
            },
        );
    }
    Ok(completed)
}

fn io_err(action: &str, path: &Path, e: &std::io::Error) -> FlockError {
    FlockError::Journal {
        detail: format!("{action} {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_storage::{Schema, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qf-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rel(name: &str, n: i64) -> Relation {
        Relation::from_rows(
            Schema::new(name, &["x"]),
            (0..n).map(|i| vec![Value::int(i)]).collect(),
        )
    }

    #[test]
    fn record_and_resume_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let (r0, r1) = (rel("s0", 5), rel("s1", 3));
        {
            let mut j = RunJournal::open(&dir, 1, 2).unwrap();
            assert_eq!(j.contiguous_prefix(10), 0);
            j.record_step(0, &r0).unwrap();
            j.record_step(1, &r1).unwrap();
        }
        let j = RunJournal::open(&dir, 1, 2).unwrap();
        assert_eq!(j.contiguous_prefix(10), 2);
        assert_eq!(j.load_step(0).unwrap().tuples(), r0.tuples());
        let got = j.load_step(1).unwrap();
        assert_eq!(got.tuples(), r1.tuples());
        assert_eq!(got.name(), "s1");
        assert_eq!(got.schema().columns(), r1.schema().columns());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let dir = tmp_dir("mismatch");
        RunJournal::open(&dir, 1, 2).unwrap();
        let plan_err = RunJournal::open(&dir, 9, 2).unwrap_err();
        assert!(
            plan_err.to_string().contains("plan fingerprint"),
            "{plan_err}"
        );
        let cat_err = RunJournal::open(&dir, 1, 9).unwrap_err();
        assert!(
            cat_err.to_string().contains("catalog fingerprint"),
            "{cat_err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_log_tail_is_ignored() {
        let dir = tmp_dir("torn");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 4)).unwrap();
        // Simulate a crash mid-append: bytes with no trailing newline.
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(LOG_FILE))
            .unwrap();
        f.write_all(b"step\t1\tdead").unwrap();
        drop(f);
        let j = RunJournal::open(&dir, 1, 2).unwrap();
        assert_eq!(j.contiguous_prefix(10), 1);
        assert!(!j.is_completed(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_is_detected() {
        let dir = tmp_dir("corrupt");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 4)).unwrap();
        // Overwrite the snapshot with a different (valid) relation: the
        // content hash no longer matches the journaled one.
        write_relation(&dir.join("step-0.qfr"), &rel("s0", 5)).unwrap();
        let err = RunJournal::open(&dir, 1, 2)
            .unwrap()
            .load_step(0)
            .unwrap_err();
        assert!(err.to_string().contains("content hash"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_in_log_truncates_prefix() {
        let dir = tmp_dir("gap");
        let mut j = RunJournal::open(&dir, 1, 2).unwrap();
        j.record_step(0, &rel("s0", 2)).unwrap();
        j.record_step(2, &rel("s2", 2)).unwrap();
        assert_eq!(j.contiguous_prefix(5), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn catalog_fingerprint_tracks_content_and_names() {
        let mut a = Database::new();
        a.insert(rel("r", 3));
        let fp_a = catalog_fingerprint(&a);
        assert_eq!(fp_a, catalog_fingerprint(&a.clone()));
        let mut b = Database::new();
        b.insert(rel("r", 4)); // different content
        assert_ne!(fp_a, catalog_fingerprint(&b));
        let mut c = Database::new();
        c.insert(rel("q", 3)); // different name
        assert_ne!(fp_a, catalog_fingerprint(&c));
        let mut two = a.clone();
        two.insert(rel("z", 1));
        assert_ne!(fp_a, catalog_fingerprint(&two));
    }
}
