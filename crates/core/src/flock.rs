//! The query flock itself.

use std::collections::BTreeSet;

use qf_datalog::{check_safety, parse_query, ConjunctiveQuery, Term, UnionQuery};
use qf_storage::Symbol;

use crate::error::{FlockError, Result};
use crate::filter::FilterCondition;

/// A query flock: a parametrized query plus a filter on its result (§2).
///
/// "Remember: a query flock is a query about its *parameters*. The
/// result of the flock is not the result of the parametrized query."
/// Evaluating a flock yields the set of parameter assignments for which
/// the instantiated query's answer passes the filter.
///
/// ```
/// use qf_core::QueryFlock;
///
/// // Fig. 2, exactly as the paper writes it.
/// let flock = QueryFlock::parse(
///     "QUERY:
///      answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
///      FILTER:
///      COUNT(answer.B) >= 20",
/// ).unwrap();
/// assert_eq!(flock.param_names(), vec!["1", "2"]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QueryFlock {
    query: UnionQuery,
    filter: FilterCondition,
}

impl QueryFlock {
    /// Build a flock from a validated union query and filter, checking:
    ///
    /// * every rule is safe (the full flock query must have finite
    ///   answers to aggregate);
    /// * the filter's head variable (for `SUM`/`MIN`/`MAX`) is an
    ///   actual head variable of the query.
    pub fn new(query: UnionQuery, filter: FilterCondition) -> Result<QueryFlock> {
        for rule in query.rules() {
            check_safety(rule).map_err(|v| FlockError::UnsafeQuery {
                violation: v.to_string(),
            })?;
        }
        if let Some(var) = filter.agg.head_var() {
            for rule in query.rules() {
                if !rule.head_vars().contains(&var) {
                    return Err(FlockError::FilterVarUnknown {
                        var: format!("{var}"),
                    });
                }
            }
        }
        Ok(QueryFlock { query, filter })
    }

    /// Build a flock with the standard support filter from query text.
    pub fn with_support(query_text: &str, threshold: i64) -> Result<QueryFlock> {
        QueryFlock::new(
            parse_query(query_text)?,
            FilterCondition::support(threshold),
        )
    }

    /// Parse the paper's two-section notation:
    ///
    /// ```text
    /// QUERY:
    ///   answer(B) :- baskets(B,$1) AND baskets(B,$2)
    /// FILTER:
    ///   COUNT(answer.B) >= 20
    /// ```
    pub fn parse(input: &str) -> Result<QueryFlock> {
        let upper = input.to_ascii_uppercase();
        let q_at = upper
            .find("QUERY:")
            .ok_or_else(|| FlockError::FilterParse {
                input: input.chars().take(40).collect(),
                detail: "missing `QUERY:` section".to_string(),
            })?;
        let f_at = upper
            .find("FILTER:")
            .ok_or_else(|| FlockError::FilterParse {
                input: input.chars().take(40).collect(),
                detail: "missing `FILTER:` section".to_string(),
            })?;
        if f_at < q_at {
            return Err(FlockError::FilterParse {
                input: input.chars().take(40).collect(),
                detail: "`FILTER:` must follow `QUERY:`".to_string(),
            });
        }
        let query_text = &input[q_at + "QUERY:".len()..f_at];
        let filter_text = &input[f_at + "FILTER:".len()..];
        let query = parse_query(query_text)?;
        let filter = FilterCondition::parse(filter_text)?;
        QueryFlock::new(query, filter)
    }

    /// The parametrized query.
    pub fn query(&self) -> &UnionQuery {
        &self.query
    }

    /// The filter condition.
    pub fn filter(&self) -> &FilterCondition {
        &self.filter
    }

    /// The flock's parameters, sorted by name. This is the schema of
    /// the flock's result.
    pub fn params(&self) -> BTreeSet<Symbol> {
        self.query.params()
    }

    /// Parameter names in result-column order.
    pub fn param_names(&self) -> Vec<String> {
        self.params().iter().map(|p| p.to_string()).collect()
    }

    /// Shorthand: the single rule of a non-union flock.
    pub fn single_rule(&self) -> Option<&ConjunctiveQuery> {
        if self.query.is_single() {
            Some(&self.query.rules()[0])
        } else {
            None
        }
    }

    /// Render in the paper's `QUERY:`/`FILTER:` notation.
    pub fn render(&self) -> String {
        format!(
            "QUERY:\n{}\nFILTER:\n{}",
            self.query,
            self.filter.render(&self.query.head_pred().to_string())
        )
    }

    /// Canonical rendering of the *query* section alone: every rule in
    /// canonical form (normalized variable names, sorted subgoals, via
    /// [`qf_datalog::canonical_rule`]), rules sorted by text. Two
    /// flocks that differ only in variable names, subgoal order, or
    /// rule order produce identical text. The filter is deliberately
    /// excluded so a result cache can share one entry across support
    /// thresholds (monotone reuse).
    pub fn canonical_query_text(&self) -> String {
        let mut rules: Vec<String> = self
            .query
            .rules()
            .iter()
            .map(|r| qf_datalog::canonical_rule(r).to_string())
            .collect();
        rules.sort();
        rules.join("\n")
    }

    /// The head-column position the filter's aggregate reads, resolved
    /// against the first rule — the same resolution the engine uses
    /// when it aggregates. `None` for `COUNT`.
    pub fn agg_head_pos(&self) -> Option<usize> {
        let v = self.filter.agg.head_var()?;
        self.query.rules()[0]
            .head
            .args
            .iter()
            .position(|&t| t == Term::Var(v))
    }

    /// The filter with its aggregate variable replaced by its head
    /// *position* (spelled `#<pos>`, a name no parsed variable can
    /// take). Variable names are spelling, not semantics: `SUM(answer.W)`
    /// reads column 1 of `answer(B,W)` but column 0 of `answer(W,Z)`,
    /// and conversely `SUM(answer.W)` over `answer(B,W)` and
    /// `SUM(answer.Y)` over `answer(X,Y)` are the same condition. The
    /// canonical filter is invariant under variable renaming and is
    /// what [`QueryFlock::canonical_text`] renders and the server's
    /// result cache compares for subsumption.
    pub fn canonical_filter(&self) -> FilterCondition {
        match self.agg_head_pos() {
            None => self.filter,
            Some(pos) => FilterCondition {
                agg: self.filter.agg.with_var(Symbol::intern(&format!("#{pos}"))),
                ..self.filter
            },
        }
    }

    /// Canonical rendering of the whole flock: the canonical query plus
    /// the [canonical filter](QueryFlock::canonical_filter) condition.
    /// Syntax-insensitive in the same sense as
    /// [`QueryFlock::canonical_query_text`] — the filter's aggregate is
    /// rendered by head position, so the text follows the canonically
    /// renamed query instead of the original variable spelling.
    pub fn canonical_text(&self) -> String {
        format!(
            "QUERY:\n{}\nFILTER:\n{}",
            self.canonical_query_text(),
            self.canonical_filter().render("answer")
        )
    }

    /// Syntax-insensitive fingerprint of the flock: the hash of its
    /// [canonical rendering](QueryFlock::canonical_text). Equal for any
    /// two spellings of the same flock; this is the flock half of the
    /// server's result-cache key (`qf serve`) and what the shell's
    /// `flock fingerprint` command prints.
    pub fn fingerprint(&self) -> u64 {
        crate::journal::fingerprint_text(&self.canonical_text())
    }
}

impl std::fmt::Display for QueryFlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_parses() {
        let flock = QueryFlock::parse(
            "QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2) FILTER: COUNT(answer.B) >= 20",
        )
        .unwrap();
        assert_eq!(flock.filter(), &FilterCondition::support(20));
        assert_eq!(flock.param_names(), vec!["1", "2"]);
    }

    #[test]
    fn fig3_medical_parses() {
        let flock = QueryFlock::parse(
            "QUERY:
             answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND
                          diagnoses(P,D) AND NOT causes(D,$s)
             FILTER:
             COUNT(answer.P) >= 20",
        )
        .unwrap();
        assert_eq!(flock.param_names(), vec!["m", "s"]);
    }

    #[test]
    fn fig4_union_parses() {
        let flock = QueryFlock::parse(
            "QUERY:
             answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
             FILTER:
             COUNT(answer(*)) >= 20",
        )
        .unwrap();
        assert_eq!(flock.query().rules().len(), 3);
    }

    #[test]
    fn fig10_weighted_parses() {
        let flock = QueryFlock::parse(
            "QUERY:
             answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND importance(B,W)
             FILTER:
             SUM(answer.W) >= 20",
        )
        .unwrap();
        assert!(flock.filter().is_monotone());
    }

    #[test]
    fn unsafe_flock_rejected() {
        let err =
            QueryFlock::with_support("answer(B) :- baskets(B,$1) AND $1 < $2", 20).unwrap_err();
        assert!(matches!(err, FlockError::UnsafeQuery { .. }));
    }

    #[test]
    fn filter_var_must_be_in_head() {
        let err = QueryFlock::parse(
            "QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2)
             FILTER: SUM(answer.W) >= 20",
        )
        .unwrap_err();
        assert!(matches!(err, FlockError::FilterVarUnknown { .. }));
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(QueryFlock::parse("answer(B) :- r(B,$1)").is_err());
        assert!(
            QueryFlock::parse("FILTER: COUNT(answer.B) >= 2 QUERY: answer(B) :- r(B,$1)").is_err()
        );
    }

    #[test]
    fn canonical_text_is_syntax_insensitive() {
        let a = QueryFlock::parse(
            "QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
             FILTER: COUNT(answer.B) >= 20",
        )
        .unwrap();
        // Renamed variable, reordered body, `(*)` spelling of COUNT.
        let b = QueryFlock::parse(
            "QUERY: answer(X) :- baskets(X,$2) AND $1 < $2 AND baskets(X,$1)
             FILTER: COUNT(answer(*)) >= 20",
        )
        .unwrap();
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Same query at a different threshold: query text shared (one
        // cache entry), full fingerprint distinct.
        let c = QueryFlock::parse(
            "QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
             FILTER: COUNT(answer.B) >= 30",
        )
        .unwrap();
        assert_eq!(a.canonical_query_text(), c.canonical_query_text());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // A genuinely different query fingerprints differently.
        let d =
            QueryFlock::parse("QUERY: answer(B) :- baskets(B,$1) FILTER: COUNT(answer.B) >= 20")
                .unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn canonical_filter_resolves_by_head_position_not_name() {
        // Same raw aggregate variable `W`, but it names *different*
        // columns: position 1 of answer(B,W) vs position 0 of
        // answer(W,Z). The canonical query texts coincide (both rename
        // to answer(V0,V1)), so the filter must distinguish them.
        let a = QueryFlock::parse("QUERY: answer(B,W) :- r(B,W,$p) FILTER: SUM(answer.W) >= 10")
            .unwrap();
        let b = QueryFlock::parse("QUERY: answer(W,Z) :- r(W,Z,$p) FILTER: SUM(answer.W) >= 10")
            .unwrap();
        assert_eq!(a.canonical_query_text(), b.canonical_query_text());
        assert_eq!(a.agg_head_pos(), Some(1));
        assert_eq!(b.agg_head_pos(), Some(0));
        assert!(!a.canonical_filter().subsumes(&b.canonical_filter()));
        assert_ne!(a.canonical_text(), b.canonical_text());
        assert_ne!(a.fingerprint(), b.fingerprint());

        // Conversely, renaming the aggregate variable along with the
        // query is pure spelling: same column, same fingerprint.
        let c = QueryFlock::parse("QUERY: answer(X,Y) :- r(X,Y,$p) FILTER: SUM(answer.Y) >= 10")
            .unwrap();
        assert_eq!(a.canonical_filter(), c.canonical_filter());
        assert_eq!(a.canonical_text(), c.canonical_text());
        assert_eq!(a.fingerprint(), c.fingerprint());
        // COUNT filters carry no variable and are untouched.
        let d = QueryFlock::with_support("answer(B) :- r(B,$p)", 5).unwrap();
        assert_eq!(d.canonical_filter(), *d.filter());
    }

    #[test]
    fn render_mentions_both_sections() {
        let flock =
            QueryFlock::with_support("answer(B) :- baskets(B,$1) AND baskets(B,$2)", 20).unwrap();
        let text = flock.render();
        assert!(text.contains("QUERY:"));
        assert!(text.contains("FILTER:"));
        // Round-trip.
        let again = QueryFlock::parse(&text).unwrap();
        assert_eq!(again, flock);
    }
}
