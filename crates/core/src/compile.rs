//! Compilation of flock queries to engine plans.
//!
//! A flock's parametrized query denotes, for every parameter assignment,
//! an answer set. Evaluation does not iterate assignments; it computes
//! the **extended answer relation** — all distinct tuples
//! `(params…, head vars…)` — in one relational plan, then aggregates by
//! the parameter columns. This is precisely the join-group-filter shape
//! of the paper's Fig. 1 SQL, generalized to negation, arithmetic, and
//! unions.
//!
//! Compilation is positional: a `Binding` tracks which output column
//! of the running intermediate holds each open term (variable or
//! parameter). Negated subgoals become antijoins and arithmetic
//! subgoals become selections, each applied at the earliest point where
//! all their terms are bound.

use std::collections::BTreeSet;

use qf_datalog::{Atom, ConjunctiveQuery, Term, UnionQuery};
use qf_engine::{
    order_greedy, order_optimal_dp, AggFn, CmpOp, JoinGraph, JoinNode, Operand, PhysicalPlan,
    Predicate,
};
use qf_storage::{Database, Symbol};

use crate::error::{FlockError, Result};
use crate::filter::{FilterAgg, FilterCondition};

/// How to order a rule's positive subgoals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinOrderStrategy {
    /// Exactly the order the subgoals are written — the "conventional
    /// optimizer missing the trick" baseline of §1.3.
    AsWritten,
    /// Greedy smallest-next-intermediate ordering using base statistics.
    #[default]
    Greedy,
    /// Exact minimum-`C_out` left-deep order (subset DP).
    OptimalDp,
}

/// A compiled rule: a plan producing the distinct
/// `(params…, head vars…)` tuples of one rule.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// The physical plan.
    pub plan: PhysicalPlan,
    /// Number of leading parameter columns (sorted by parameter name).
    pub n_params: usize,
    /// Number of trailing head-variable columns (in head order).
    pub n_head: usize,
}

/// Column layout tracker: which column of the running intermediate holds
/// each open term.
#[derive(Clone, Debug, Default)]
pub(crate) struct Binding {
    cols: Vec<(Term, usize)>,
}

impl Binding {
    pub(crate) fn col_of(&self, t: Term) -> Option<usize> {
        self.cols.iter().find(|(u, _)| *u == t).map(|(_, c)| *c)
    }

    pub(crate) fn bind(&mut self, t: Term, col: usize) {
        if self.col_of(t).is_none() {
            self.cols.push((t, col));
        }
    }

    pub(crate) fn binds_all(&self, terms: &[Term]) -> bool {
        terms.iter().all(|&t| self.col_of(t).is_some())
    }
}

/// A scan of one atom's relation with constant/self-equality selections
/// applied; `terms[i]` is the open term at output column `i` of the
/// atom (columns mirror the base relation's columns).
#[derive(Clone, Debug)]
pub(crate) struct Leaf {
    pub(crate) plan: PhysicalPlan,
    /// Open term per column; `None` where the argument is a constant.
    pub(crate) terms: Vec<Option<Term>>,
}

/// Build the leaf plan for an atom: scan plus selections for constant
/// arguments and repeated open terms.
pub(crate) fn build_leaf(atom: &Atom) -> Leaf {
    let scan = PhysicalPlan::scan(atom.pred.as_str());
    let mut preds = Vec::new();
    let mut terms: Vec<Option<Term>> = Vec::with_capacity(atom.arity());
    let mut first_col: Vec<(Term, usize)> = Vec::new();
    for (col, &arg) in atom.args.iter().enumerate() {
        match arg {
            Term::Const(v) => {
                preds.push(Predicate::col_const(col, CmpOp::Eq, v));
                terms.push(None);
            }
            open => {
                if let Some(&(_, prev)) = first_col.iter().find(|(t, _)| *t == open) {
                    preds.push(Predicate::col_col(prev, CmpOp::Eq, col));
                } else {
                    first_col.push((open, col));
                }
                terms.push(Some(open));
            }
        }
    }
    Leaf {
        plan: PhysicalPlan::select(scan, preds),
        terms,
    }
}

/// Decide the positive-atom order for a rule under a strategy.
pub(crate) fn atom_order(
    atoms: &[&Atom],
    db: &Database,
    strategy: JoinOrderStrategy,
) -> Vec<usize> {
    match strategy {
        JoinOrderStrategy::AsWritten => (0..atoms.len()).collect(),
        JoinOrderStrategy::Greedy | JoinOrderStrategy::OptimalDp => {
            let mut graph = JoinGraph::new();
            let mut attr_ids: Vec<Term> = Vec::new();
            let attr_id = |t: Term, ids: &mut Vec<Term>| -> u32 {
                match ids.iter().position(|&u| u == t) {
                    Some(i) => i as u32,
                    None => {
                        ids.push(t);
                        (ids.len() - 1) as u32
                    }
                }
            };
            for atom in atoms {
                let (rows, col_distinct) = match db.get(atom.pred.as_str()) {
                    Ok(r) => {
                        let s = r.stats();
                        (
                            s.cardinality as f64,
                            (0..s.arity())
                                .map(|c| s.column(c).distinct as f64)
                                .collect(),
                        )
                    }
                    // Unknown relation (e.g. a planned-but-unmaterialized
                    // filter step): neutral guess.
                    Err(_) => (1000.0, vec![100.0; atom.arity()]),
                };
                let col_distinct: Vec<f64> = col_distinct;
                let mut attrs = Vec::new();
                let mut dist = Vec::new();
                let mut seen = BTreeSet::new();
                for (col, &arg) in atom.args.iter().enumerate() {
                    if let Term::Const(_) = arg {
                        continue;
                    }
                    if seen.insert(arg) {
                        attrs.push(attr_id(arg, &mut attr_ids));
                        dist.push(*col_distinct.get(col).unwrap_or(&100.0));
                    }
                }
                graph.add(JoinNode::new(atom.pred.as_str(), attrs, rows, dist));
            }
            match strategy {
                JoinOrderStrategy::Greedy => order_greedy(&graph),
                _ => order_optimal_dp(&graph),
            }
        }
    }
}

/// Compile one rule into a plan producing its distinct
/// `(params…, head vars…)` tuples. Parameters are sorted by name; head
/// variables follow in head-argument order.
pub fn compile_rule(
    rule: &ConjunctiveQuery,
    db: &Database,
    strategy: JoinOrderStrategy,
) -> Result<CompiledRule> {
    let positive: Vec<&Atom> = rule.positive_atoms().collect();
    if positive.is_empty() {
        return Err(FlockError::IllegalPlan {
            detail: format!("rule `{rule}` has no positive subgoals to scan"),
        });
    }
    let order = atom_order(&positive, db, strategy);

    // Pending work: negations and comparisons applied once bound.
    let mut pending_neg: Vec<&Atom> = rule.negated_atoms().collect();
    let mut pending_cmp: Vec<_> = rule.comparisons().collect();

    let mut binding = Binding::default();
    let mut current: Option<PhysicalPlan> = None;
    let mut width = 0usize;

    for &ai in &order {
        let atom = positive[ai];
        let leaf = build_leaf(atom);
        match current.take() {
            None => {
                for (col, term) in leaf.terms.iter().enumerate() {
                    if let Some(t) = term {
                        binding.bind(*t, col);
                    }
                }
                width = atom.arity();
                current = Some(leaf.plan);
            }
            Some(cur) => {
                // Join keys: terms bound on both sides.
                let mut keys = Vec::new();
                for (col, term) in leaf.terms.iter().enumerate() {
                    if let Some(t) = term {
                        if let Some(lc) = binding.col_of(*t) {
                            keys.push((lc, col));
                        }
                    }
                }
                let joined = PhysicalPlan::hash_join(cur, leaf.plan, keys);
                for (col, term) in leaf.terms.iter().enumerate() {
                    if let Some(t) = term {
                        binding.bind(*t, width + col);
                    }
                }
                width += atom.arity();
                current = Some(joined);
            }
        }
        // Apply everything now bound.
        let plan = current.take().unwrap();
        let plan = apply_pending(plan, &binding, &mut pending_neg, &mut pending_cmp);
        current = Some(plan);
    }

    let mut plan = current.expect("at least one positive atom");
    if !pending_neg.is_empty() || !pending_cmp.is_empty() {
        // Safety guarantees full binding; reaching here means the rule
        // was not safety-checked.
        return Err(FlockError::UnsafeQuery {
            violation: format!(
                "rule `{rule}` has unbound negated/arithmetic subgoals after all joins"
            ),
        });
    }

    // Final projection: parameters sorted by name, then head vars.
    let params: Vec<Symbol> = rule.params().into_iter().collect();
    let mut cols = Vec::with_capacity(params.len() + rule.head.arity());
    for &p in &params {
        cols.push(
            binding
                .col_of(Term::Param(p))
                .ok_or_else(|| FlockError::UnsafeQuery {
                    violation: format!("parameter ${p} is not bound by a positive subgoal"),
                })?,
        );
    }
    for &t in &rule.head.args {
        cols.push(binding.col_of(t).ok_or_else(|| FlockError::UnsafeQuery {
            violation: format!("head term {t} is not bound by a positive subgoal"),
        })?);
    }
    plan = PhysicalPlan::project(plan, cols);
    Ok(CompiledRule {
        plan,
        n_params: params.len(),
        n_head: rule.head.arity(),
    })
}

/// Apply all pending negations and comparisons whose terms are bound.
fn apply_pending(
    mut plan: PhysicalPlan,
    binding: &Binding,
    pending_neg: &mut Vec<&Atom>,
    pending_cmp: &mut Vec<&qf_datalog::Comparison>,
) -> PhysicalPlan {
    // Comparisons first (cheap selections shrink antijoin inputs).
    let mut i = 0;
    while i < pending_cmp.len() {
        let c = pending_cmp[i];
        let terms: Vec<Term> = c.terms().collect();
        if binding.binds_all(&terms) {
            let to_operand = |t: Term| match t {
                Term::Const(v) => Operand::Const(v),
                open => Operand::Col(binding.col_of(open).unwrap()),
            };
            plan = PhysicalPlan::select(
                plan,
                vec![Predicate {
                    lhs: to_operand(c.lhs),
                    op: c.op,
                    rhs: to_operand(c.rhs),
                }],
            );
            pending_cmp.swap_remove(i);
        } else {
            i += 1;
        }
    }
    let mut i = 0;
    while i < pending_neg.len() {
        let atom = pending_neg[i];
        let open: Vec<Term> = atom
            .args
            .iter()
            .copied()
            .filter(|t| !t.is_const())
            .collect();
        if binding.binds_all(&open) {
            let leaf = build_leaf(atom);
            let mut keys = Vec::new();
            for (col, term) in leaf.terms.iter().enumerate() {
                if let Some(t) = term {
                    keys.push((binding.col_of(*t).unwrap(), col));
                }
            }
            plan = PhysicalPlan::anti_join(plan, leaf.plan, keys);
            pending_neg.swap_remove(i);
        } else {
            i += 1;
        }
    }
    plan
}

/// Compile a whole (possibly union) flock query into a plan producing
/// the distinct `(params…, head vars…)` tuples across all rules.
pub fn compile_answer(
    query: &UnionQuery,
    db: &Database,
    strategy: JoinOrderStrategy,
) -> Result<CompiledRule> {
    let mut plans = Vec::with_capacity(query.rules().len());
    let mut n_params = 0;
    let mut n_head = 0;
    for rule in query.rules() {
        let c = compile_rule(rule, db, strategy)?;
        n_params = c.n_params;
        n_head = c.n_head;
        plans.push(c.plan);
    }
    let plan = if plans.len() == 1 {
        plans.pop().unwrap()
    } else {
        PhysicalPlan::union(plans)
    };
    Ok(CompiledRule {
        plan,
        n_params,
        n_head,
    })
}

/// Wrap an answer plan with the flock's filter: group by the parameter
/// columns, aggregate, threshold, and project the parameters — the
/// flock's *result* (§2: "a query flock is a query about its
/// parameters").
pub fn filter_answer(
    answer: &CompiledRule,
    rule0: &ConjunctiveQuery,
    filter: &FilterCondition,
) -> Result<PhysicalPlan> {
    let group: Vec<usize> = (0..answer.n_params).collect();
    let agg = match filter.agg {
        FilterAgg::Count => AggFn::Count,
        FilterAgg::Sum(v) | FilterAgg::Min(v) | FilterAgg::Max(v) => {
            let pos = rule0
                .head
                .args
                .iter()
                .position(|&t| t == Term::Var(v))
                .ok_or_else(|| FlockError::FilterVarUnknown {
                    var: format!("{v}"),
                })?;
            let col = answer.n_params + pos;
            match filter.agg {
                FilterAgg::Sum(_) => AggFn::Sum(col),
                FilterAgg::Min(_) => AggFn::Min(col),
                _ => AggFn::Max(col),
            }
        }
    };
    let agg_col = answer.n_params; // aggregate output follows group cols.
    let plan = PhysicalPlan::aggregate(answer.plan.clone(), group.clone(), agg);
    let plan = PhysicalPlan::select(
        plan,
        vec![Predicate::col_const(
            agg_col,
            filter.op,
            qf_storage::Value::int(filter.threshold),
        )],
    );
    Ok(PhysicalPlan::project(plan, group))
}

/// [`filter_answer`] without the final parameter projection: the plan
/// yields `(params…, aggregate)` rows for every parameter assignment
/// passing the filter. Projecting away the trailing aggregate column
/// recovers the flock result exactly; *keeping* it lets a result cache
/// re-filter the rows to answer any request whose filter the baseline
/// [subsumes](FilterCondition::subsumes) — the server's monotone reuse.
pub fn filter_answer_scored(
    answer: &CompiledRule,
    rule0: &ConjunctiveQuery,
    filter: &FilterCondition,
) -> Result<PhysicalPlan> {
    let group: Vec<usize> = (0..answer.n_params).collect();
    let agg = match filter.agg {
        FilterAgg::Count => AggFn::Count,
        FilterAgg::Sum(v) | FilterAgg::Min(v) | FilterAgg::Max(v) => {
            let pos = rule0
                .head
                .args
                .iter()
                .position(|&t| t == Term::Var(v))
                .ok_or_else(|| FlockError::FilterVarUnknown {
                    var: format!("{v}"),
                })?;
            let col = answer.n_params + pos;
            match filter.agg {
                FilterAgg::Sum(_) => AggFn::Sum(col),
                FilterAgg::Min(_) => AggFn::Min(col),
                _ => AggFn::Max(col),
            }
        }
    };
    let plan = PhysicalPlan::aggregate(answer.plan.clone(), group, agg);
    Ok(PhysicalPlan::select(
        plan,
        vec![Predicate::col_const(
            answer.n_params,
            filter.op,
            qf_storage::Value::int(filter.threshold),
        )],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_datalog::parse_rule;
    use qf_engine::execute;
    use qf_storage::{Relation, Schema, Value};

    fn basket_db() -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            vec![
                vec![Value::int(1), Value::str("beer")],
                vec![Value::int(1), Value::str("diapers")],
                vec![Value::int(2), Value::str("beer")],
                vec![Value::int(2), Value::str("diapers")],
                vec![Value::int(3), Value::str("beer")],
            ],
        ));
        db
    }

    #[test]
    fn compile_basket_rule_produces_extended_answers() {
        let rule = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2").unwrap();
        let compiled = compile_rule(&rule, &basket_db(), JoinOrderStrategy::AsWritten).unwrap();
        assert_eq!(compiled.n_params, 2);
        assert_eq!(compiled.n_head, 1);
        let rel = execute(&compiled.plan, &basket_db()).unwrap();
        // ($1=beer, $2=diapers, B∈{1,2}) only.
        assert_eq!(rel.len(), 2);
        for t in rel.iter() {
            assert_eq!(t.get(0), Value::str("beer"));
            assert_eq!(t.get(1), Value::str("diapers"));
        }
    }

    #[test]
    fn constants_and_repeats_become_selections() {
        let rule = parse_rule("answer(B) :- baskets(B,beer)").unwrap();
        let compiled = compile_rule(&rule, &basket_db(), JoinOrderStrategy::AsWritten).unwrap();
        let rel = execute(&compiled.plan, &basket_db()).unwrap();
        assert_eq!(rel.len(), 3); // baskets 1, 2, 3

        // Self-equality: arc(X,X) style.
        let mut db = basket_db();
        db.insert(Relation::from_rows(
            Schema::new("arc", &["s", "t"]),
            vec![
                vec![Value::int(1), Value::int(1)],
                vec![Value::int(1), Value::int(2)],
            ],
        ));
        let rule = parse_rule("answer(X) :- arc(X,X)").unwrap();
        let compiled = compile_rule(&rule, &db, JoinOrderStrategy::AsWritten).unwrap();
        let rel = execute(&compiled.plan, &db).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(0), Value::int(1));
    }

    #[test]
    fn negation_compiles_to_antijoin() {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("diagnoses", &["p", "d"]),
            vec![
                vec![Value::int(1), Value::str("flu")],
                vec![Value::int(2), Value::str("flu")],
            ],
        ));
        db.insert(Relation::from_rows(
            Schema::new("exhibits", &["p", "s"]),
            vec![
                vec![Value::int(1), Value::str("fever")],
                vec![Value::int(2), Value::str("rash")],
            ],
        ));
        db.insert(Relation::from_rows(
            Schema::new("causes", &["d", "s"]),
            vec![vec![Value::str("flu"), Value::str("fever")]],
        ));
        let rule =
            parse_rule("answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)")
                .unwrap();
        let compiled = compile_rule(&rule, &db, JoinOrderStrategy::AsWritten).unwrap();
        let rel = execute(&compiled.plan, &db).unwrap();
        // Patient 1's fever is explained by flu; patient 2's rash is not.
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(0), Value::str("rash"));
        assert_eq!(rel.tuples()[0].get(1), Value::int(2));
    }

    #[test]
    fn all_orders_agree_on_results() {
        let rule = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2").unwrap();
        let db = basket_db();
        let mut results = Vec::new();
        for s in [
            JoinOrderStrategy::AsWritten,
            JoinOrderStrategy::Greedy,
            JoinOrderStrategy::OptimalDp,
        ] {
            let compiled = compile_rule(&rule, &db, s).unwrap();
            let rel = execute(&compiled.plan, &db).unwrap();
            results.push(rel.tuples().to_vec());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn filter_answer_counts_support() {
        let rule = parse_rule("answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2").unwrap();
        let db = basket_db();
        let compiled = compile_rule(&rule, &db, JoinOrderStrategy::AsWritten).unwrap();
        let plan = filter_answer(&compiled, &rule, &FilterCondition::support(2)).unwrap();
        let rel = execute(&plan, &db).unwrap();
        // (beer, diapers) appears in baskets 1 and 2 → passes ≥2.
        assert_eq!(rel.len(), 1);
        let plan = filter_answer(&compiled, &rule, &FilterCondition::support(3)).unwrap();
        let rel = execute(&plan, &db).unwrap();
        assert!(rel.is_empty());
    }
}
