//! Query-plan execution.
//!
//! Runs a [`QueryPlan`] step by step: each `FILTER` step evaluates its
//! query (against base relations plus previous steps' outputs), groups
//! by the step's parameters, applies the flock's filter condition, and
//! materializes the surviving parameter assignments as a new relation
//! in the working database — exactly the operational reading of
//! `R(P) := FILTER(P, Q, C)` (§4.1).
//!
//! Execution is instrumented: every step reports its answer size, group
//! count, survivor count, and wall-clock time, which is what the
//! experiments (and the paper's intuition about "smaller relations …
//! subsequent join steps take less time") need to show.

use std::time::Instant;

use qf_datalog::param_isomorphism;
use qf_engine::{execute_with, ExecContext};
use qf_storage::{Database, Relation, Schema, Symbol, Tuple};

use crate::compile::{compile_answer, filter_answer, JoinOrderStrategy};
use crate::error::Result;
use crate::eval::as_flock_result;
use crate::filter::FilterAgg;
use crate::plan::QueryPlan;

/// Instrumentation for one executed `FILTER` step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step (output relation) name.
    pub name: String,
    /// Tuples in the step query's extended answer (before grouping).
    pub answer_tuples: usize,
    /// Distinct parameter assignments seen (groups).
    pub groups: usize,
    /// Assignments surviving the filter (output tuples).
    pub survivors: usize,
    /// Wall-clock time for the step.
    pub elapsed: std::time::Duration,
    /// True when the step was answered by renaming an earlier step's
    /// result instead of evaluating (parameter symmetry, §4.3 fn. 3).
    pub reused: bool,
    /// True when the step was replayed from a run journal snapshot
    /// instead of evaluating (crash recovery, see [`crate::journal`]).
    pub resumed: bool,
}

impl StepReport {
    /// Fraction of assignments the filter eliminated.
    pub fn elimination_rate(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            1.0 - self.survivors as f64 / self.groups as f64
        }
    }
}

/// The outcome of executing a [`QueryPlan`].
#[derive(Clone, Debug)]
pub struct PlanExecution {
    /// The flock result: surviving parameter assignments, columns named
    /// after the parameters.
    pub result: Relation,
    /// Per-step instrumentation, in execution order.
    pub steps: Vec<StepReport>,
}

impl PlanExecution {
    /// Total wall-clock time across steps.
    pub fn total_elapsed(&self) -> std::time::Duration {
        self.steps.iter().map(|s| s.elapsed).sum()
    }

    /// Total tuples materialized by step answers (a proxy for work done).
    pub fn total_answer_tuples(&self) -> usize {
        self.steps.iter().map(|s| s.answer_tuples).sum()
    }
}

/// Execute a validated plan against `db`.
///
/// `db` is not mutated; step outputs live in a working copy (relation
/// clones are reference-count bumps, so the copy is cheap).
pub fn execute_plan(
    plan: &QueryPlan,
    db: &Database,
    strategy: JoinOrderStrategy,
) -> Result<PlanExecution> {
    execute_plan_with(plan, db, strategy, &ExecContext::unbounded())
}

/// [`execute_plan`] under an execution governor: every step's answer
/// evaluation and filter application run with `ctx`'s budgets, deadline
/// and cancellation token. A tripped budget aborts the plan with the
/// engine error; the working database is dropped, so the caller's `db`
/// is untouched no matter where the failure lands.
///
/// Independent `FILTER` steps evaluate concurrently: consecutive steps
/// whose queries reference only already-materialized relations form a
/// *wave*, and each wave's non-reusable steps run on up to
/// [`ExecContext::threads`] scoped worker threads against the immutable
/// working database. Results are committed in plan order, so reports,
/// symmetry reuse, and the final result are identical to sequential
/// execution.
pub fn execute_plan_with(
    plan: &QueryPlan,
    db: &Database,
    strategy: JoinOrderStrategy,
    ctx: &ExecContext,
) -> Result<PlanExecution> {
    execute_plan_inner(plan, db, strategy, ctx, None)
}

/// [`execute_plan_with`] journaled for crash-safe resume: each step's
/// output is durably recorded in `journal` as it commits, and steps the
/// journal already holds are replayed from their snapshots (reported
/// with [`StepReport::resumed`] set) instead of re-evaluated. A run
/// killed at any point — budget trip, deadline, cancellation, or
/// `kill -9` — restarts from its last completed step and produces a
/// bitwise-identical final result.
pub fn execute_plan_journaled(
    plan: &QueryPlan,
    db: &Database,
    strategy: JoinOrderStrategy,
    ctx: &ExecContext,
    journal: &mut crate::journal::RunJournal,
) -> Result<PlanExecution> {
    execute_plan_inner(plan, db, strategy, ctx, Some(journal))
}

fn execute_plan_inner(
    plan: &QueryPlan,
    db: &Database,
    strategy: JoinOrderStrategy,
    ctx: &ExecContext,
    mut journal: Option<&mut crate::journal::RunJournal>,
) -> Result<PlanExecution> {
    let mut working = db.clone();
    let mut reports = Vec::with_capacity(plan.steps.len());
    let mut result: Option<Relation> = None;
    // Executed reduction steps, for parameter-symmetry reuse (§4.3
    // footnote 3: the single-parameter basket subqueries are "exactly
    // the same" up to renaming — evaluate once, rename the result).
    let mut executed: Vec<(&crate::plan::FilterStep, Relation)> = Vec::new();

    /// How a wave step obtains its result.
    enum Slot {
        /// Rename an earlier wave's result (parameter symmetry).
        Prev(Relation),
        /// Rename the result of an in-wave representative (by index
        /// into the wave), once that representative has evaluated.
        Rep(usize),
        /// Evaluate the step's query.
        Eval,
    }

    // Replay the journal's contiguous completed prefix: each snapshot
    // is loaded (hash-checked) and committed exactly as its original
    // evaluation was, so later steps — including symmetry reuse — see
    // an identical working database. A snapshot that fails integrity
    // verification truncates the replayable prefix right there: the
    // clean earlier steps stay replayed, and everything from the
    // damaged step on is recomputed instead of resumed.
    let mut resume_prefix = journal
        .as_ref()
        .map_or(0, |j| j.contiguous_prefix(plan.steps.len()));
    for (idx, step) in plan.steps.iter().take(resume_prefix).enumerate() {
        let named = match journal
            .as_ref()
            .expect("prefix > 0 implies journal")
            .load_step(idx)
        {
            Ok(named) => named,
            Err(e @ crate::error::FlockError::SnapshotCorrupt { .. }) => {
                ctx.record_degradation(
                    "journal-corrupt-snapshot",
                    format!("{e}; recomputing from step {idx}"),
                );
                ctx.note_corruption_recovery();
                resume_prefix = idx;
                break;
            }
            Err(e) => return Err(e),
        };
        reports.push(StepReport {
            name: step.output.clone(),
            answer_tuples: 0,
            groups: 0,
            survivors: named.len(),
            elapsed: std::time::Duration::ZERO,
            reused: false,
            resumed: true,
        });
        working.insert(named.clone());
        executed.push((step, named.clone()));
        result = Some(named);
    }

    let mut i = resume_prefix;
    while i < plan.steps.len() {
        // A wave is the maximal run of consecutive steps whose queries
        // reference only relations already materialized (base relations
        // or outputs of completed waves) — mutually independent, so
        // they may evaluate concurrently. The first remaining step is
        // always included; if its inputs are genuinely missing,
        // compilation reports the error exactly as before.
        let mut end = i + 1;
        while end < plan.steps.len() && step_inputs_ready(&plan.steps[end], &working) {
            end += 1;
        }
        let wave = &plan.steps[i..end];

        // Classify before evaluating: symmetric steps must keep reusing
        // results (including from a representative in the same wave)
        // rather than being re-evaluated just because they became
        // concurrent.
        let mut slots: Vec<Slot> = Vec::with_capacity(wave.len());
        for (w, step) in wave.iter().enumerate() {
            if let Some(renamed) = try_symmetric_reuse(step, &executed) {
                slots.push(Slot::Prev(renamed));
                continue;
            }
            let rep = (0..w).find(|&p| {
                matches!(slots[p], Slot::Eval)
                    && wave[p].query.rules().len() == 1
                    && step.query.rules().len() == 1
                    && wave[p].params.len() == step.params.len()
                    && param_isomorphism(&wave[p].query.rules()[0], &step.query.rules()[0])
                        .is_some()
            });
            slots.push(match rep {
                Some(p) => Slot::Rep(p),
                None => Slot::Eval,
            });
        }

        // Evaluate the representatives in parallel over the immutable
        // working database.
        let eval_idx: Vec<usize> = (0..wave.len())
            .filter(|&w| matches!(slots[w], Slot::Eval))
            .collect();
        if !eval_idx.is_empty() {
            ctx.note_workers(ctx.threads().min(eval_idx.len()).max(1));
        }
        let working_ref = &working;
        let evaluated = qf_engine::par_items(&eval_idx, ctx.threads(), |&w| {
            evaluate_step(plan, &wave[w], working_ref, strategy, ctx).map(|e| (w, e))
        })?;
        let mut by_slot: Vec<Option<EvaluatedStep>> = (0..wave.len()).map(|_| None).collect();
        for (w, e) in evaluated {
            by_slot[w] = Some(e);
        }

        // Commit in plan order so reports and the working database look
        // exactly as they would under sequential execution.
        let mut named_by_w: Vec<Option<Relation>> = vec![None; wave.len()];
        for (w, step) in wave.iter().enumerate() {
            let commit = Instant::now();
            let (named, report) = match &slots[w] {
                Slot::Prev(renamed) => reuse_commit(step, renamed.clone(), commit),
                Slot::Rep(p) => {
                    let rep_named = named_by_w[*p]
                        .clone()
                        .unwrap_or_else(|| Relation::empty(Schema::new(&wave[*p].output, &[])));
                    match try_symmetric_reuse(step, &[(&wave[*p], rep_named)]) {
                        Some(renamed) => reuse_commit(step, renamed, commit),
                        // Unreachable in practice (classification already
                        // proved the isomorphism); evaluate as a fallback.
                        None => {
                            let e = evaluate_step(plan, step, &working, strategy, ctx)?;
                            eval_commit(step, e)
                        }
                    }
                }
                Slot::Eval => {
                    let e =
                        by_slot[w]
                            .take()
                            .ok_or_else(|| crate::error::FlockError::IllegalPlan {
                                detail: format!(
                                    "step `{}` was skipped by the scheduler",
                                    step.output
                                ),
                            })?;
                    eval_commit(step, e)
                }
            };
            if let Some(j) = journal.as_deref_mut() {
                // Journaling is advisory once the run is underway: a
                // write failure (after bounded retry inside the
                // journal) must not kill a run that is otherwise
                // healthy. Record the degradation — resume will start
                // from the last durable step — and stop journaling.
                match j.record_step(i + w, &named) {
                    Ok(()) => {
                        for _ in 0..j.take_io_retries() {
                            ctx.note_io_retry();
                        }
                    }
                    Err(e) => {
                        for _ in 0..j.take_io_retries() {
                            ctx.note_io_retry();
                        }
                        ctx.record_degradation(
                            "journal-advisory",
                            format!(
                                "{e}; continuing without journaling (resume disabled \
                                 past step {})",
                                i + w
                            ),
                        );
                        journal = None;
                    }
                }
            }
            reports.push(report);
            working.insert(named.clone());
            executed.push((step, named.clone()));
            named_by_w[w] = Some(named.clone());
            result = Some(named);
        }
        i = end;
    }

    let result = result.expect("validated plans are non-empty");
    Ok(PlanExecution {
        result: as_flock_result(&plan.flock, &result),
        steps: reports,
    })
}

/// The outcome of a *scored* plan execution: the flock's surviving
/// parameter assignments with their aggregate values still attached.
#[derive(Clone, Debug)]
pub struct ScoredExecution {
    /// `(params…, aggregate)` rows for every assignment passing the
    /// flock's filter; columns are the parameter names plus `agg`.
    /// Projecting away `agg` recovers the flock result exactly;
    /// re-filtering by any condition the flock's filter
    /// [subsumes](crate::FilterCondition::subsumes) answers that
    /// condition exactly (see [`crate::flock_result_from_scored`]).
    pub scored: Relation,
    /// Per-step instrumentation, in execution order.
    pub steps: Vec<StepReport>,
}

/// [`execute_plan_with`], but the final `FILTER` step keeps the
/// aggregate column: the plan's reductions run exactly as usual
/// (including symmetry reuse), while the last step aggregates and
/// thresholds *without* projecting the aggregate away. This is what the
/// server's result cache stores — one scored run at support `s` answers
/// every request at a subsumed threshold `s' ≥ s` by re-filtering.
///
/// Steps run sequentially here (the server overlaps whole requests
/// instead of waves within one); the engine still parallelizes inside
/// each step's plan under `ctx.threads()`.
pub fn execute_plan_scored_with(
    plan: &QueryPlan,
    db: &Database,
    strategy: JoinOrderStrategy,
    ctx: &ExecContext,
) -> Result<ScoredExecution> {
    let mut working = db.clone();
    let mut reports = Vec::with_capacity(plan.steps.len());
    let mut executed: Vec<(&crate::plan::FilterStep, Relation)> = Vec::new();
    let last = plan.steps.len() - 1;
    for step in &plan.steps[..last] {
        let (named, report) = match try_symmetric_reuse(step, &executed) {
            Some(renamed) => reuse_commit(step, renamed, Instant::now()),
            None => {
                let e = evaluate_step(plan, step, &working, strategy, ctx)?;
                eval_commit(step, e)
            }
        };
        reports.push(report);
        working.insert(named.clone());
        executed.push((step, named));
    }
    let step = &plan.steps[last];
    let e = evaluate_step_scored(plan, step, &working, strategy, ctx)?;
    let mut columns: Vec<String> = step.params.iter().map(|p| p.to_string()).collect();
    columns.push("agg".to_string());
    let scored = Relation::from_sorted_dedup(
        Schema::from_columns("scored_result", columns),
        e.filtered.tuples().to_vec(),
    );
    reports.push(StepReport {
        name: step.output.clone(),
        answer_tuples: e.answer_tuples,
        groups: e.groups,
        survivors: scored.len(),
        elapsed: e.elapsed,
        reused: false,
        resumed: false,
    });
    Ok(ScoredExecution {
        scored,
        steps: reports,
    })
}

/// True when every relation `step`'s query references already exists in
/// `working` — the condition for joining the current wave.
fn step_inputs_ready(step: &crate::plan::FilterStep, working: &Database) -> bool {
    step.query
        .rules()
        .iter()
        .flat_map(|r| r.predicates())
        .all(|pred| working.contains(pred.as_str()))
}

/// The measured outcome of actually evaluating one `FILTER` step.
struct EvaluatedStep {
    answer_tuples: usize,
    groups: usize,
    filtered: Relation,
    elapsed: std::time::Duration,
}

/// Evaluate one step's query against `working` and apply the flock's
/// filter. Runs on a worker thread during wave-parallel execution, so
/// it only reads `working` and charges the shared governor.
fn evaluate_step(
    plan: &QueryPlan,
    step: &crate::plan::FilterStep,
    working: &Database,
    strategy: JoinOrderStrategy,
    ctx: &ExecContext,
) -> Result<EvaluatedStep> {
    let start = Instant::now();
    let answer = compile_answer(&step.query, working, strategy)?;
    // Under spill-to-disk, skip materializing the (possibly huge)
    // extended answer: fuse the filter's group-by/aggregate directly
    // onto the answer plan so the whole step runs as one spillable tree
    // and only the (small) surviving assignments materialize. SUM
    // filters still take the materialized path — the §5 negative-weight
    // check below needs the answer relation's column statistics — and
    // the per-step answer/group instrumentation is forgone (reported as
    // zero, like a symmetry-reused step).
    if ctx.spill_enabled() && !matches!(plan.flock.filter().agg, FilterAgg::Sum(_)) {
        let filter_plan = filter_answer(&answer, &step.query.rules()[0], plan.flock.filter())?;
        let filtered = execute_with(&filter_plan, working, ctx)?;
        return Ok(EvaluatedStep {
            answer_tuples: 0,
            groups: 0,
            filtered,
            elapsed: start.elapsed(),
        });
    }
    let answer_rel = execute_with(&answer.plan, working, ctx)?;
    // SUM-filter monotonicity precondition: no negative weights.
    if let FilterAgg::Sum(v) = plan.flock.filter().agg {
        let rule0 = &step.query.rules()[0];
        if let Some(pos) = rule0
            .head
            .args
            .iter()
            .position(|&t| t == qf_datalog::Term::Var(v))
        {
            let col = answer.n_params + pos;
            if let Some(min) = answer_rel.stats().column(col).min {
                if min < qf_storage::Value::int(0) {
                    return Err(crate::error::FlockError::NegativeWeight {
                        detail: format!("step `{}`: minimum weight {min}", step.output),
                    });
                }
            }
        }
    }
    // Group by parameters, apply the flock's condition, keep params.
    let filtered = filter_answer_rel(plan, step, &answer, &answer_rel, working, ctx)?;
    let groups = count_groups(&answer_rel, answer.n_params);
    Ok(EvaluatedStep {
        answer_tuples: answer_rel.len(),
        groups,
        filtered,
        elapsed: start.elapsed(),
    })
}

/// [`evaluate_step`] in scored mode: aggregate and threshold but keep
/// the aggregate column (`filter_answer_scored` instead of
/// `filter_answer`). Same spill fusing and §5 negative-weight check.
fn evaluate_step_scored(
    plan: &QueryPlan,
    step: &crate::plan::FilterStep,
    working: &Database,
    strategy: JoinOrderStrategy,
    ctx: &ExecContext,
) -> Result<EvaluatedStep> {
    let start = Instant::now();
    let answer = compile_answer(&step.query, working, strategy)?;
    if ctx.spill_enabled() && !matches!(plan.flock.filter().agg, FilterAgg::Sum(_)) {
        let scored_plan = crate::compile::filter_answer_scored(
            &answer,
            &step.query.rules()[0],
            plan.flock.filter(),
        )?;
        let filtered = execute_with(&scored_plan, working, ctx)?;
        return Ok(EvaluatedStep {
            answer_tuples: 0,
            groups: 0,
            filtered,
            elapsed: start.elapsed(),
        });
    }
    let answer_rel = execute_with(&answer.plan, working, ctx)?;
    if let FilterAgg::Sum(v) = plan.flock.filter().agg {
        let rule0 = &step.query.rules()[0];
        if let Some(pos) = rule0
            .head
            .args
            .iter()
            .position(|&t| t == qf_datalog::Term::Var(v))
        {
            let col = answer.n_params + pos;
            if let Some(min) = answer_rel.stats().column(col).min {
                if min < qf_storage::Value::int(0) {
                    return Err(crate::error::FlockError::NegativeWeight {
                        detail: format!("step `{}`: minimum weight {min}", step.output),
                    });
                }
            }
        }
    }
    let mut tmp = working.clone();
    const TMP: &str = "__step_answer";
    tmp.insert(answer_rel.renamed(TMP));
    let wrapped = crate::compile::CompiledRule {
        plan: qf_engine::PhysicalPlan::scan(TMP),
        n_params: answer.n_params,
        n_head: answer.n_head,
    };
    let scored_plan = crate::compile::filter_answer_scored(
        &wrapped,
        &step.query.rules()[0],
        plan.flock.filter(),
    )?;
    let filtered = execute_with(&scored_plan, &tmp, ctx)?;
    let groups = count_groups(&answer_rel, answer.n_params);
    Ok(EvaluatedStep {
        answer_tuples: answer_rel.len(),
        groups,
        filtered,
        elapsed: start.elapsed(),
    })
}

/// Report + named relation for a step answered by renaming.
fn reuse_commit(
    step: &crate::plan::FilterStep,
    renamed: Relation,
    start: Instant,
) -> (Relation, StepReport) {
    let report = StepReport {
        name: step.output.clone(),
        answer_tuples: 0,
        groups: 0,
        survivors: renamed.len(),
        elapsed: start.elapsed(),
        reused: true,
        resumed: false,
    };
    (renamed, report)
}

/// Report + named relation for an evaluated step: materialize under the
/// step's name with parameter column names.
fn eval_commit(step: &crate::plan::FilterStep, e: EvaluatedStep) -> (Relation, StepReport) {
    let named = Relation::from_sorted_dedup(
        Schema::from_columns(
            step.output.clone(),
            step.params.iter().map(|p| p.to_string()).collect(),
        ),
        e.filtered.tuples().to_vec(),
    );
    let report = StepReport {
        name: step.output.clone(),
        answer_tuples: e.answer_tuples,
        groups: e.groups,
        survivors: named.len(),
        elapsed: e.elapsed,
        reused: false,
        resumed: false,
    };
    (named, report)
}

/// If `step`'s query is isomorphic to an already-executed step's query
/// under a parameter bijection, produce its result by renaming columns
/// of the earlier result. Single-rule step queries only (union
/// symmetry would need one consistent bijection across branches).
fn try_symmetric_reuse(
    step: &crate::plan::FilterStep,
    executed: &[(&crate::plan::FilterStep, Relation)],
) -> Option<Relation> {
    if step.query.rules().len() != 1 {
        return None;
    }
    for (prev, rel) in executed {
        if prev.query.rules().len() != 1 || prev.params.len() != step.params.len() {
            continue;
        }
        let Some(mapping) = param_isomorphism(&prev.query.rules()[0], &step.query.rules()[0])
        else {
            continue;
        };
        // Column i of the new relation holds step.params[i]; find which
        // previous column maps onto it.
        let mut proj = Vec::with_capacity(step.params.len());
        for &new_param in &step.params {
            let old_param: Symbol = mapping
                .iter()
                .find(|(_, to)| *to == new_param)
                .map(|(from, _)| *from)?;
            proj.push(prev.params.iter().position(|&p| p == old_param)?);
        }
        let tuples: Vec<Tuple> = rel.iter().map(|t| t.project(&proj)).collect();
        let schema = Schema::from_columns(
            step.output.clone(),
            step.params.iter().map(|p| p.to_string()).collect(),
        );
        return Some(Relation::from_tuples(schema, tuples));
    }
    None
}

/// Apply the flock's filter to an already-materialized extended answer.
fn filter_answer_rel(
    plan: &QueryPlan,
    step: &crate::plan::FilterStep,
    answer: &crate::compile::CompiledRule,
    answer_rel: &Relation,
    working: &Database,
    ctx: &ExecContext,
) -> Result<Relation> {
    // Reuse the compiled-plan path by wrapping the materialized answer
    // as a scan: insert it under a reserved name.
    let mut tmp = working.clone();
    const TMP: &str = "__step_answer";
    tmp.insert(answer_rel.renamed(TMP));
    let wrapped = crate::compile::CompiledRule {
        plan: qf_engine::PhysicalPlan::scan(TMP),
        n_params: answer.n_params,
        n_head: answer.n_head,
    };
    let filter_plan = filter_answer(&wrapped, &step.query.rules()[0], plan.flock.filter())?;
    Ok(execute_with(&filter_plan, &tmp, ctx)?)
}

/// Distinct parameter prefixes in the extended answer.
fn count_groups(answer_rel: &Relation, n_params: usize) -> usize {
    let cols: Vec<usize> = (0..n_params).collect();
    let mut seen = qf_storage::FastSet::default();
    for t in answer_rel.iter() {
        seen.insert(t.project(&cols));
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{final_step, FilterStep};
    use crate::plangen::direct_plan;
    use crate::QueryFlock;
    use qf_datalog::parse_query;
    use qf_storage::Value;

    /// Medical data where exactly one (symptom, medicine) pair is an
    /// unexplained side-effect with support ≥ 2.
    fn medical_db() -> Database {
        let mut db = Database::new();
        let mut diagnoses = Vec::new();
        let mut exhibits = Vec::new();
        let mut treatments = Vec::new();
        // Patients 1..=3: take "zorix", exhibit "headache", have "flu";
        // flu does not cause headache → unexplained, support 3.
        for p in 1..=3i64 {
            diagnoses.push(vec![Value::int(p), Value::str("flu")]);
            exhibits.push(vec![Value::int(p), Value::str("headache")]);
            treatments.push(vec![Value::int(p), Value::str("zorix")]);
        }
        // Patients 4..=5: take "zorix", exhibit "fever", have "flu";
        // flu causes fever → explained.
        for p in 4..=5i64 {
            diagnoses.push(vec![Value::int(p), Value::str("flu")]);
            exhibits.push(vec![Value::int(p), Value::str("fever")]);
            treatments.push(vec![Value::int(p), Value::str("zorix")]);
        }
        // Patient 6: rare symptom, rare medicine (below support).
        diagnoses.push(vec![Value::int(6), Value::str("flu")]);
        exhibits.push(vec![Value::int(6), Value::str("twitch")]);
        treatments.push(vec![Value::int(6), Value::str("obscurol")]);
        db.insert(Relation::from_rows(
            Schema::new("diagnoses", &["p", "d"]),
            diagnoses,
        ));
        db.insert(Relation::from_rows(
            Schema::new("exhibits", &["p", "s"]),
            exhibits,
        ));
        db.insert(Relation::from_rows(
            Schema::new("treatments", &["p", "m"]),
            treatments,
        ));
        db.insert(Relation::from_rows(
            Schema::new("causes", &["d", "s"]),
            vec![vec![Value::str("flu"), Value::str("fever")]],
        ));
        db
    }

    fn medical_flock(threshold: i64) -> QueryFlock {
        QueryFlock::with_support(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
            threshold,
        )
        .unwrap()
    }

    fn fig5_plan(threshold: i64) -> QueryPlan {
        let flock = medical_flock(threshold);
        let ok_s = FilterStep::new("okS", parse_query("answer(P) :- exhibits(P,$s)").unwrap());
        let ok_m = FilterStep::new("okM", parse_query("answer(P) :- treatments(P,$m)").unwrap());
        let final_ = final_step(&flock, &[ok_s.clone(), ok_m.clone()], "ok").unwrap();
        QueryPlan::new(flock, vec![ok_s, ok_m, final_]).unwrap()
    }

    #[test]
    fn fig5_plan_equals_direct() {
        let db = medical_db();
        for threshold in [1, 2, 3, 4] {
            let plan = fig5_plan(threshold);
            let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
            let direct = crate::eval::evaluate_direct(
                &medical_flock(threshold),
                &db,
                JoinOrderStrategy::Greedy,
            )
            .unwrap();
            assert_eq!(
                run.result.tuples(),
                direct.tuples(),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn expected_side_effect_found() {
        let db = medical_db();
        let run = execute_plan(&fig5_plan(2), &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(run.result.len(), 1);
        let t = &run.result.tuples()[0];
        // Columns sorted by param name: $m, $s.
        assert_eq!(t.get(0), Value::str("zorix"));
        assert_eq!(t.get(1), Value::str("headache"));
    }

    #[test]
    fn prefilters_prune_candidates() {
        let db = medical_db();
        let run = execute_plan(&fig5_plan(2), &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(run.steps.len(), 3);
        let ok_s = &run.steps[0];
        // Symptoms: headache(3), fever(2), twitch(1) → twitch eliminated.
        assert_eq!(ok_s.groups, 3);
        assert_eq!(ok_s.survivors, 2);
        assert!(ok_s.elimination_rate() > 0.0);
        let ok_m = &run.steps[1];
        // Medicines: zorix(5), obscurol(1) → obscurol eliminated.
        assert_eq!(ok_m.groups, 2);
        assert_eq!(ok_m.survivors, 1);
    }

    #[test]
    fn direct_plan_execution_matches_eval() {
        let db = medical_db();
        let flock = medical_flock(2);
        let plan = direct_plan(&flock).unwrap();
        let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
        let direct = crate::eval::evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(run.result.tuples(), direct.tuples());
        assert_eq!(run.steps.len(), 1);
    }

    #[test]
    fn symmetric_steps_are_reused() {
        // The basket flock's ok_1/ok_2 are isomorphic modulo $1 ↔ $2:
        // the second must be answered by renaming, not re-evaluation.
        let mut db = Database::new();
        let mut rows = Vec::new();
        for b in 0..30i64 {
            rows.push(vec![Value::int(b), Value::str("hot1")]);
            rows.push(vec![Value::int(b), Value::str("hot2")]);
            rows.push(vec![Value::int(b), Value::str(&format!("noise{b}"))]);
        }
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows,
        ));
        let flock = QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            20,
        )
        .unwrap();
        let plan = crate::plangen::single_param_plan(&flock, &db).unwrap();
        let run = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
        assert!(!run.steps[0].reused);
        assert!(
            run.steps[1].reused,
            "ok_2 should reuse ok_1: {:?}",
            run.steps
        );
        assert!(!run.steps[2].reused);
        // And the result is still the right one.
        let direct = crate::eval::evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(run.result.tuples(), direct.tuples());
    }

    #[test]
    fn asymmetric_steps_not_reused() {
        let db = medical_db();
        let run = execute_plan(&fig5_plan(2), &db, JoinOrderStrategy::Greedy).unwrap();
        // okS (exhibits) and okM (treatments) are structurally different.
        assert!(run.steps.iter().all(|s| !s.reused), "{:?}", run.steps);
    }

    #[test]
    fn working_database_is_not_leaked() {
        let db = medical_db();
        execute_plan(&fig5_plan(2), &db, JoinOrderStrategy::Greedy).unwrap();
        assert!(!db.contains("okS"));
        assert!(!db.contains("okM"));
        assert!(!db.contains("ok"));
    }

    #[test]
    fn scored_execution_answers_subsumed_thresholds() {
        let db = medical_db();
        // Score once at the loosest threshold the cache will hold.
        let run = execute_plan_scored_with(
            &fig5_plan(2),
            &db,
            JoinOrderStrategy::Greedy,
            &ExecContext::unbounded(),
        )
        .unwrap();
        assert_eq!(run.scored.schema().columns().last().unwrap(), "agg");
        // Every subsumed (tighter) threshold is answered bitwise
        // identically to a cold run by re-filtering the scored rows.
        for t in [2, 3, 4] {
            let baseline = crate::FilterCondition::support(2);
            let request = crate::FilterCondition::support(t);
            assert!(baseline.subsumes(&request));
            let reused =
                crate::eval::flock_result_from_scored(&medical_flock(t), &run.scored, &request);
            let cold = execute_plan(&fig5_plan(t), &db, JoinOrderStrategy::Greedy).unwrap();
            assert_eq!(reused.tuples(), cold.result.tuples(), "threshold {t}");
            assert_eq!(reused.schema().columns(), cold.result.schema().columns());
        }
        // A looser threshold is NOT subsumed — the cache must refuse it.
        assert!(!crate::FilterCondition::support(2).subsumes(&crate::FilterCondition::support(1)));
    }

    #[test]
    fn result_columns_named_after_params() {
        let db = medical_db();
        let run = execute_plan(&fig5_plan(2), &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(
            run.result.schema().columns(),
            &["m".to_string(), "s".to_string()]
        );
    }
}
