//! Delta-join maintenance of cached scored flock results (qf-delta).
//!
//! A [`FlockDelta`] is the flock-aware half of incremental maintenance:
//! it owns a counted-multiplicity [`GroupAggView`] over the flock's
//! *unfiltered* extended answer (every `(params…, head vars…)` tuple
//! with its Gupta-Mumick derivation count) and knows how to keep it
//! exact under an `append`/`retract` batch by evaluating only the
//! **delta joins** — never the full query.
//!
//! For a single-rule flock `h(…) :- a₁ AND … AND aₘ` and a batch that
//! turns relation `R` from `R_old` into `R_new` (`added = R_new ∖
//! R_old`, `removed = R_old ∖ R_new`), the standard telescoping
//! factorization gives the exact derivation delta: for the `k`-th
//! occurrence of `R` in the body, join with occurrences before `k`
//! reading `R_new`, occurrence `k` reading `added` (insertions) or
//! `removed` (deletions), and occurrences after `k` reading `R_old`.
//! Summed over `k`, insertions minus deletions is exactly
//! `J(R_new) − J(R_old)` as a bag of derivations; insertions are
//! applied first so multiplicities never go transiently negative.
//!
//! The maintained view is *unfiltered* (the engine's vacuous baseline):
//! its [`scored_relation`](FlockDelta::scored_relation) therefore
//! answers any same-direction threshold by re-filtering, exactly like a
//! scored run under [`crate::vacuous_filter`]. Eligibility is
//! deliberately narrow — see [`FlockDelta::maintainable`]; everything
//! else falls back to recomputation, and any error from
//! [`apply`](FlockDelta::apply) means the view must be discarded (the
//! caller recomputes), never served.

use std::collections::BTreeSet;

use qf_datalog::{Atom, Comparison, ConjunctiveQuery, Term};
use qf_engine::{AggFn, EngineError, GroupAggView, Resource};
use qf_storage::{Database, Relation, Schema, Tuple, Value};

use crate::error::{FlockError, Result};
use crate::filter::FilterAgg;
use crate::flock::QueryFlock;

/// Budgets for building and maintaining one delta view. Both exist so
/// a pathological flock (huge unfiltered answer, explosive delta join)
/// degrades to "not maintained" instead of stalling ingest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaLimits {
    /// Cap on live distinct extended-answer tuples kept in the view.
    pub max_tuples: usize,
    /// Cap on tuple visits per build or per applied batch.
    pub max_work: u64,
}

impl Default for DeltaLimits {
    fn default() -> Self {
        DeltaLimits {
            max_tuples: 1 << 18,
            max_work: 1 << 24,
        }
    }
}

/// What one [`FlockDelta::apply`] did, for the caller's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaApply {
    /// Tuples rescanned by bounded MIN/MAX re-checks during the batch.
    pub recheck_tuples: u64,
}

/// Incrementally-maintained scored state for one cached flock.
#[derive(Clone, Debug)]
pub struct FlockDelta {
    rule: ConjunctiveQuery,
    n_params: usize,
    /// Output row layout: parameters sorted by name, then the head's
    /// argument terms in head order — the extended-answer column order
    /// the compiled plan produces.
    layout: Vec<Term>,
    /// Base relations the rule reads (maintenance triggers).
    preds: BTreeSet<String>,
    agg: AggFn,
    view: GroupAggView,
}

impl FlockDelta {
    /// Is this flock eligible for delta maintenance? Requires a single
    /// rule (no union — a union's per-rule bags would need separate
    /// views), no negated subgoals (deletions under negation can
    /// *create* derivations, which the counting scheme does not model),
    /// and at least one parameter (parameterless flocks hit the
    /// engine's empty-input aggregate special case instead of grouped
    /// aggregation). Comparisons are fine: they are evaluated during
    /// delta enumeration.
    pub fn maintainable(flock: &QueryFlock) -> bool {
        match flock.single_rule() {
            Some(rule) => rule.negated_atoms().next().is_none() && !rule.params().is_empty(),
            None => false,
        }
    }

    /// Build the view from scratch over `db` by enumerating every
    /// valuation of the rule body. This is the one full evaluation the
    /// view ever pays; afterwards only deltas are joined.
    pub fn build(flock: &QueryFlock, db: &Database, limits: &DeltaLimits) -> Result<FlockDelta> {
        if !Self::maintainable(flock) {
            return Err(delta_gate("flock is not delta-maintainable"));
        }
        let rule = flock.single_rule().expect("gate checked").clone();
        let params: Vec<_> = rule.params().into_iter().collect();
        let n_params = params.len();
        let mut layout: Vec<Term> = params.into_iter().map(Term::Param).collect();
        layout.extend(rule.head.args.iter().copied());
        let agg = agg_fn(flock, &rule, n_params)?;
        let view = GroupAggView::new(n_params, agg, limits.max_tuples)?;
        let preds: BTreeSet<String> = rule
            .positive_atoms()
            .map(|a| a.pred.as_str().to_string())
            .collect();
        let mut this = FlockDelta {
            rule,
            n_params,
            layout,
            preds,
            agg,
            view,
        };
        let atoms: Vec<&Atom> = this.rule.positive_atoms().collect();
        let sources: Vec<&[Tuple]> = atoms
            .iter()
            .map(|a| relation_tuples(db, a.pred.as_str()))
            .collect();
        let ctx = EnumCtx::new(&atoms, &sources, &this.rule, &this.layout, limits.max_work)?;
        let mut work = 0u64;
        let mut env = Vec::new();
        let agg = this.agg;
        let view = &mut this.view;
        enumerate(&ctx, 0, &mut env, &mut work, &mut |row| {
            check_weight(agg, &row)?;
            view.insert(&row)?;
            Ok(())
        })?;
        Ok(this)
    }

    /// Does an update to `rel` affect this view?
    pub fn touches(&self, rel: &str) -> bool {
        self.preds.contains(rel)
    }

    /// Maintain the view across one batch that changed `rel` from
    /// `old` to `new`. `db` is the post-batch catalog (every relation
    /// other than `rel` is read from it unchanged).
    ///
    /// On `Err` the view is in an undefined intermediate state and
    /// MUST be discarded — the caller falls back to recomputation.
    pub fn apply(
        &mut self,
        rel: &str,
        old: &Relation,
        new: &Relation,
        db: &Database,
        limits: &DeltaLimits,
    ) -> Result<DeltaApply> {
        if !self.touches(rel) {
            return Ok(DeltaApply::default());
        }
        let (added, removed) = diff_sorted(old.tuples(), new.tuples());
        if added.is_empty() && removed.is_empty() {
            return Ok(DeltaApply::default());
        }
        let atoms: Vec<&Atom> = self.rule.positive_atoms().collect();
        let occs: Vec<usize> = atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pred.as_str() == rel)
            .map(|(i, _)| i)
            .collect();
        let mut work = 0u64;
        // Insertions first: a derivation both telescopes mention (one
        // with an added tuple, one with a removed tuple) must gain its
        // multiplicity before losing it.
        for delta in [&added, &removed] {
            let inserting = std::ptr::eq(delta, &added);
            if delta.is_empty() {
                continue;
            }
            for (k, &occ) in occs.iter().enumerate() {
                let sources: Vec<&[Tuple]> = atoms
                    .iter()
                    .enumerate()
                    .map(|(j, a)| {
                        if j == occ {
                            delta.as_slice()
                        } else if a.pred.as_str() == rel {
                            // Earlier occurrences read the new state,
                            // later ones the old — the telescoping sum.
                            let before = occs[..k].contains(&j);
                            if before {
                                new.tuples()
                            } else {
                                old.tuples()
                            }
                        } else {
                            relation_tuples(db, a.pred.as_str())
                        }
                    })
                    .collect();
                let ctx =
                    EnumCtx::new(&atoms, &sources, &self.rule, &self.layout, limits.max_work)?;
                let mut env = Vec::new();
                let agg = self.agg;
                let view = &mut self.view;
                enumerate(&ctx, 0, &mut env, &mut work, &mut |row| {
                    if inserting {
                        check_weight(agg, &row)?;
                        view.insert(&row)?;
                    } else {
                        view.remove(&row)?;
                    }
                    Ok(())
                })?;
            }
        }
        Ok(DeltaApply {
            recheck_tuples: self.view.take_recheck_tuples(),
        })
    }

    /// The full unfiltered scored relation the view currently holds —
    /// bitwise what `execute_plan_scored_with` under a
    /// [vacuous](crate::vacuous_filter) baseline would recompute.
    pub fn scored_relation(&self, param_names: &[String]) -> Result<Relation> {
        let mut columns: Vec<String> = param_names.to_vec();
        columns.push("agg".to_string());
        // Rows come out keyed by distinct group prefixes in BTreeMap
        // order, so they are already sorted and deduplicated.
        Ok(Relation::from_sorted_dedup(
            Schema::from_columns("scored_result", columns),
            self.view.scored()?,
        ))
    }

    /// Live distinct extended-answer tuples held (memory accounting).
    pub fn live_tuples(&self) -> usize {
        self.view.live_tuples()
    }

    /// Number of parameter (group-key) columns in the scored output.
    pub fn n_params(&self) -> usize {
        self.n_params
    }
}

/// The engine aggregate the flock's filter compiles to over the
/// extended-answer layout, mirroring `filter_answer_scored`.
fn agg_fn(flock: &QueryFlock, rule: &ConjunctiveQuery, n_params: usize) -> Result<AggFn> {
    match flock.filter().agg {
        FilterAgg::Count => Ok(AggFn::Count),
        FilterAgg::Sum(v) | FilterAgg::Min(v) | FilterAgg::Max(v) => {
            let pos = rule
                .head
                .args
                .iter()
                .position(|&t| t == Term::Var(v))
                .ok_or_else(|| FlockError::FilterVarUnknown {
                    var: format!("{v}"),
                })?;
            let col = n_params + pos;
            Ok(match flock.filter().agg {
                FilterAgg::Sum(_) => AggFn::Sum(col),
                FilterAgg::Min(_) => AggFn::Min(col),
                _ => AggFn::Max(col),
            })
        }
    }
}

/// Reject a negative weight entering a maintained SUM: a cold
/// evaluation would refuse it (`check_sum_weights`), so the maintained
/// answer must refuse it too rather than silently diverge.
fn check_weight(agg: AggFn, row: &Tuple) -> Result<()> {
    if let AggFn::Sum(c) = agg {
        if let Some(v) = row.get(c).as_int() {
            if v < 0 {
                return Err(FlockError::NegativeWeight {
                    detail: format!("weight {v} entered a maintained SUM"),
                });
            }
        }
    }
    Ok(())
}

fn delta_gate(detail: &str) -> FlockError {
    FlockError::Engine(EngineError::DeltaInvariant {
        detail: detail.to_string(),
    })
}

/// A relation's tuples, with absent relations read as empty (the
/// catalog may simply not have loaded a subgoal's data yet).
fn relation_tuples<'a>(db: &'a Database, name: &str) -> &'a [Tuple] {
    match db.get(name) {
        Ok(rel) => rel.tuples(),
        Err(_) => &[],
    }
}

/// Set-difference both ways over sorted, deduplicated tuple slices:
/// `(new ∖ old, old ∖ new)`.
fn diff_sorted(old: &[Tuple], new: &[Tuple]) -> (Vec<Tuple>, Vec<Tuple>) {
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                removed.push(old[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&old[i..]);
    added.extend_from_slice(&new[j..]);
    (added, removed)
}

/// Immutable context for one nested-loop enumeration of the rule body.
struct EnumCtx<'a> {
    atoms: &'a [&'a Atom],
    sources: &'a [&'a [Tuple]],
    /// Comparisons checkable once atoms `0..=level` are bound, indexed
    /// by level — each comparison is tested exactly once, as early as
    /// its terms allow.
    cmp_at: Vec<Vec<&'a Comparison>>,
    layout: &'a [Term],
    max_work: u64,
}

impl<'a> EnumCtx<'a> {
    fn new(
        atoms: &'a [&'a Atom],
        sources: &'a [&'a [Tuple]],
        rule: &'a ConjunctiveQuery,
        layout: &'a [Term],
        max_work: u64,
    ) -> Result<EnumCtx<'a>> {
        let mut cmp_at: Vec<Vec<&Comparison>> = vec![Vec::new(); atoms.len()];
        for c in rule.comparisons() {
            let level = c
                .terms()
                .map(|t| {
                    atoms
                        .iter()
                        .position(|a| a.args.contains(&t))
                        .ok_or_else(|| {
                            delta_gate(&format!("comparison term {t} bound by no positive atom"))
                        })
                })
                .try_fold(0usize, |acc, l| l.map(|l| acc.max(l)))?;
            cmp_at[level].push(c);
        }
        Ok(EnumCtx {
            atoms,
            sources,
            cmp_at,
            layout,
            max_work,
        })
    }
}

/// A binding environment: term → value, scoped by truncation.
type Env = Vec<(Term, Value)>;

fn lookup(env: &Env, term: Term) -> Option<Value> {
    if let Term::Const(v) = term {
        return Some(v);
    }
    env.iter().find(|(t, _)| *t == term).map(|&(_, v)| v)
}

/// Recursive nested-loop join over the body atoms in written order,
/// feeding each complete valuation's extended-answer row to `sink`.
fn enumerate(
    ctx: &EnumCtx<'_>,
    level: usize,
    env: &mut Env,
    work: &mut u64,
    sink: &mut dyn FnMut(Tuple) -> Result<()>,
) -> Result<()> {
    if level == ctx.atoms.len() {
        let mut row = Vec::with_capacity(ctx.layout.len());
        for &t in ctx.layout {
            row.push(
                lookup(env, t).ok_or_else(|| {
                    delta_gate(&format!("output term {t} unbound by the rule body"))
                })?,
            );
        }
        return sink(Tuple::from(row));
    }
    let atom = ctx.atoms[level];
    let source = ctx.sources[level];
    'tuples: for tuple in source {
        *work += 1;
        if *work > ctx.max_work {
            return Err(FlockError::Engine(EngineError::ResourceExhausted {
                resource: Resource::Rows,
                limit: ctx.max_work,
                observed: *work,
            }));
        }
        let mark = env.len();
        for (i, &arg) in atom.args.iter().enumerate() {
            let v = tuple.get(i);
            match lookup(env, arg) {
                Some(bound) if bound == v => {}
                Some(_) => {
                    env.truncate(mark);
                    continue 'tuples;
                }
                None => env.push((arg, v)),
            }
        }
        let holds =
            ctx.cmp_at[level]
                .iter()
                .all(|c| match (lookup(env, c.lhs), lookup(env, c.rhs)) {
                    (Some(a), Some(b)) => c.op.eval(a.cmp(&b)),
                    _ => false,
                });
        if holds {
            enumerate(ctx, level + 1, env, work, sink)?;
        }
        env.truncate(mark);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::JoinOrderStrategy;
    use crate::eval::evaluate_direct;
    use crate::flock::QueryFlock;
    use crate::program::FlockProgram;
    use crate::shard::vacuous_filter;
    use qf_engine::ExecContext;

    fn parse(text: &str) -> QueryFlock {
        FlockProgram::parse(text).unwrap().flock().clone()
    }

    fn baskets(rows: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows.iter()
                .map(|&(b, i)| vec![Value::int(b), Value::int(i)])
                .collect(),
        ));
        db
    }

    /// Cold-recompute the unfiltered scored relation via the standard
    /// evaluation pipeline.
    fn cold_scored(flock: &QueryFlock, db: &Database) -> Relation {
        let vac = QueryFlock::new(flock.query().clone(), vacuous_filter(flock.filter())).unwrap();
        let plan = crate::plangen::direct_plan(&vac).unwrap();
        crate::exec::execute_plan_scored_with(
            &plan,
            db,
            JoinOrderStrategy::Greedy,
            &ExecContext::unbounded(),
        )
        .unwrap()
        .scored
    }

    const FREQ: &str = "QUERY:\nanswer(B) :- baskets(B,$1)\nFILTER:\nCOUNT(answer.B) >= 2";

    #[test]
    fn build_matches_cold_scored() {
        let flock = parse(FREQ);
        let db = baskets(&[(1, 10), (1, 20), (2, 10), (3, 10), (3, 30)]);
        let delta = FlockDelta::build(&flock, &db, &DeltaLimits::default()).unwrap();
        let scored = delta.scored_relation(&flock.param_names()).unwrap();
        let cold = cold_scored(&flock, &db);
        assert_eq!(scored.tuples(), cold.tuples());
        assert_eq!(scored.schema().columns(), cold.schema().columns());
    }

    #[test]
    fn append_and_retract_track_cold_recompute() {
        let flock = parse(FREQ);
        let mut db = baskets(&[(1, 10), (1, 20), (2, 10)]);
        let mut delta = FlockDelta::build(&flock, &db, &DeltaLimits::default()).unwrap();
        let limits = DeltaLimits::default();

        // Append two tuples (one a duplicate, which must be a no-op).
        let old = db.get("baskets").unwrap().clone();
        let new = Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            vec![
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(20)],
                vec![Value::int(2), Value::int(10)],
                vec![Value::int(2), Value::int(20)],
                vec![Value::int(4), Value::int(10)],
            ],
        );
        db.insert(new.clone());
        delta.apply("baskets", &old, &new, &db, &limits).unwrap();
        let scored = delta.scored_relation(&flock.param_names()).unwrap();
        assert_eq!(scored.tuples(), cold_scored(&flock, &db).tuples());

        // Retract one of them again.
        let old = new;
        let new = Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            vec![
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(20)],
                vec![Value::int(2), Value::int(10)],
                vec![Value::int(4), Value::int(10)],
            ],
        );
        db.insert(new.clone());
        delta.apply("baskets", &old, &new, &db, &limits).unwrap();
        let scored = delta.scored_relation(&flock.param_names()).unwrap();
        assert_eq!(scored.tuples(), cold_scored(&flock, &db).tuples());
    }

    #[test]
    fn self_join_rule_survives_simultaneous_add_and_remove() {
        // Two occurrences of the touched relation plus a comparison:
        // the telescoping must not double-count, and a derivation
        // created by the insert pass and killed by the remove pass must
        // cancel exactly.
        let flock = parse(
            "QUERY:\nanswer(I) :- baskets(B,I) AND baskets(B,$1) AND I < $1\nFILTER:\nCOUNT(answer.I) >= 1",
        );
        let mut db = baskets(&[(1, 10), (1, 20), (2, 10), (2, 30)]);
        let mut delta = FlockDelta::build(&flock, &db, &DeltaLimits::default()).unwrap();
        let limits = DeltaLimits::default();

        let old = db.get("baskets").unwrap().clone();
        let new = Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            vec![
                vec![Value::int(1), Value::int(10)],
                // (1,20) removed, (1,40) added: pairs (10,40) appear,
                // (10,20) disappear, all in one batch.
                vec![Value::int(1), Value::int(40)],
                vec![Value::int(2), Value::int(10)],
                vec![Value::int(2), Value::int(30)],
            ],
        );
        db.insert(new.clone());
        delta.apply("baskets", &old, &new, &db, &limits).unwrap();
        let scored = delta.scored_relation(&flock.param_names()).unwrap();
        assert_eq!(scored.tuples(), cold_scored(&flock, &db).tuples());

        // And the filtered answer equals a direct evaluation.
        let served = crate::eval::flock_result_from_scored(&flock, &scored, flock.filter());
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(served.tuples(), direct.tuples());
    }

    #[test]
    fn union_and_negation_are_gated_out() {
        let union = parse(
            "QUERY:\nanswer(B) :- baskets(B,$1)\nanswer(B) :- other(B,$1)\nFILTER:\nCOUNT(answer.B) >= 1",
        );
        assert!(!FlockDelta::maintainable(&union));
        let negated = parse(
            "QUERY:\nanswer(B) :- baskets(B,$1) AND NOT banned(B,$1)\nFILTER:\nCOUNT(answer.B) >= 1",
        );
        assert!(!FlockDelta::maintainable(&negated));
        let db = baskets(&[(1, 10)]);
        assert!(FlockDelta::build(&union, &db, &DeltaLimits::default()).is_err());
    }

    #[test]
    fn negative_weight_under_sum_is_refused() {
        let flock = parse("QUERY:\nanswer(B,W) :- sales(B,W,$1)\nFILTER:\nSUM(answer.W) >= 0");
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("sales", &["bid", "w", "region"]),
            vec![vec![Value::int(1), Value::int(5), Value::int(7)]],
        ));
        let mut delta = FlockDelta::build(&flock, &db, &DeltaLimits::default()).unwrap();
        let old = db.get("sales").unwrap().clone();
        let new = Relation::from_rows(
            Schema::new("sales", &["bid", "w", "region"]),
            vec![
                vec![Value::int(1), Value::int(5), Value::int(7)],
                vec![Value::int(2), Value::int(-3), Value::int(7)],
            ],
        );
        db.insert(new.clone());
        let err = delta
            .apply("sales", &old, &new, &db, &DeltaLimits::default())
            .unwrap_err();
        assert!(matches!(err, FlockError::NegativeWeight { .. }), "{err}");
    }

    #[test]
    fn work_budget_is_a_typed_resource_error() {
        let flock = parse(FREQ);
        let db = baskets(&[(1, 10), (1, 20), (2, 10), (3, 10), (3, 30)]);
        let tight = DeltaLimits {
            max_tuples: 1 << 18,
            max_work: 2,
        };
        let err = FlockDelta::build(&flock, &db, &tight).unwrap_err();
        assert!(
            matches!(
                err,
                FlockError::Engine(EngineError::ResourceExhausted { .. })
            ),
            "{err}"
        );
    }
}
