//! Errors for the query-flocks core.

use qf_datalog::DatalogError;
use qf_engine::EngineError;
use qf_storage::StorageError;

/// Errors raised while building, planning, or evaluating query flocks.
#[derive(Debug, Clone, PartialEq)]
pub enum FlockError {
    /// Error from the Datalog frontend.
    Datalog(DatalogError),
    /// Error from the relational engine.
    Engine(EngineError),
    /// Error from the storage layer.
    Storage(StorageError),
    /// Malformed filter condition text.
    FilterParse {
        /// The offending input.
        input: String,
        /// What went wrong.
        detail: String,
    },
    /// The filter references a head variable the query does not bind.
    FilterVarUnknown {
        /// The missing variable.
        var: String,
    },
    /// The flock's query is unsafe (a flock must itself be safe to have
    /// a finite answer to filter).
    UnsafeQuery {
        /// The safety violation, rendered.
        violation: String,
    },
    /// A query plan violates the §4.2 legality rule.
    IllegalPlan {
        /// Which rule was violated and where.
        detail: String,
    },
    /// An optimization requiring a monotone filter was asked of a
    /// non-monotone one (pruning would be unsound).
    NonMonotoneFilter,
    /// A monotone `SUM` filter met a negative weight at evaluation time
    /// (the §5 monotonicity precondition is violated by the data).
    NegativeWeight {
        /// The parameter assignment where it happened (best effort).
        detail: String,
    },
    /// A run journal could not be created, validated, or replayed
    /// (fingerprint mismatch, I/O failure, lock conflict).
    Journal {
        /// What went wrong.
        detail: String,
    },
    /// A journal snapshot failed integrity verification on replay
    /// (frame checksum, content hash, or relation-name mismatch).
    /// Recovery policy: the replayable prefix is truncated to just
    /// before this step and the rest is recomputed — poisoned state is
    /// never resumed from.
    SnapshotCorrupt {
        /// The step whose snapshot is corrupt.
        step: usize,
        /// What the verifier observed.
        detail: String,
    },
    /// The naive reference evaluator was asked to try more assignments
    /// than its safety cap (it is for tests on tiny data only).
    NaiveTooLarge {
        /// Number of assignments that would be tried.
        assignments: u128,
        /// The configured cap.
        cap: u128,
    },
}

impl std::fmt::Display for FlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlockError::Datalog(e) => write!(f, "{e}"),
            FlockError::Engine(e) => write!(f, "{e}"),
            FlockError::Storage(e) => write!(f, "{e}"),
            FlockError::FilterParse { input, detail } => {
                write!(f, "bad filter `{input}`: {detail}")
            }
            FlockError::FilterVarUnknown { var } => {
                write!(f, "filter references `{var}`, which is not a head variable")
            }
            FlockError::UnsafeQuery { violation } => {
                write!(f, "flock query is unsafe: {violation}")
            }
            FlockError::IllegalPlan { detail } => write!(f, "illegal query plan: {detail}"),
            FlockError::NonMonotoneFilter => write!(
                f,
                "filter is not monotone; a-priori pruning would be unsound"
            ),
            FlockError::NegativeWeight { detail } => write!(
                f,
                "negative weight under a SUM filter breaks monotonicity: {detail}"
            ),
            FlockError::Journal { detail } => write!(f, "journal error: {detail}"),
            FlockError::SnapshotCorrupt { step, detail } => {
                write!(f, "journal snapshot for step {step} is corrupt: {detail}")
            }
            FlockError::NaiveTooLarge { assignments, cap } => write!(
                f,
                "naive evaluation would try {assignments} assignments (cap {cap})"
            ),
        }
    }
}

impl std::error::Error for FlockError {}

impl From<DatalogError> for FlockError {
    fn from(e: DatalogError) -> Self {
        FlockError::Datalog(e)
    }
}

impl From<EngineError> for FlockError {
    fn from(e: EngineError) -> Self {
        FlockError::Engine(e)
    }
}

impl From<StorageError> for FlockError {
    fn from(e: StorageError) -> Self {
        FlockError::Storage(e)
    }
}

/// Convenience alias for flock results.
pub type Result<T> = std::result::Result<T, FlockError>;
