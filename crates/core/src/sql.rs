//! SQL rendering of flocks and plans.
//!
//! §1.3 shows the market-basket flock as SQL (Fig. 1) and §2.1 promises
//! that "each of the advantages mentioned above can be translated to SQL
//! terms". This module performs that translation: a flock becomes a
//! `SELECT … GROUP BY … HAVING` statement (negated subgoals become
//! `NOT EXISTS`), and a query plan becomes a script of
//! `CREATE TABLE … AS SELECT` statements — one per `FILTER` step — the
//! shape a SQL DBMS would need to exploit the a-priori trick.

use std::fmt::Write;

use qf_datalog::{Atom, ConjunctiveQuery, Literal, Term};

use crate::error::{FlockError, Result};
use crate::filter::FilterAgg;
use crate::flock::QueryFlock;
use crate::plan::QueryPlan;

/// Render a flock as a single SQL statement (Fig. 1 shape). Union
/// flocks render as a `UNION` of subselects wrapped in an outer
/// aggregation.
pub fn to_sql(flock: &QueryFlock) -> Result<String> {
    let rules = flock.query().rules();
    let params: Vec<String> = flock.param_names();
    let filter = flock.filter();

    // The aggregate expression over the answer column(s).
    let agg_sql = |head_expr: &str| -> String {
        match filter.agg {
            FilterAgg::Count => format!("COUNT(DISTINCT {head_expr})"),
            FilterAgg::Sum(_) => format!("SUM(DISTINCT_WEIGHT({head_expr}))"),
            FilterAgg::Min(_) => format!("MIN({head_expr})"),
            FilterAgg::Max(_) => format!("MAX({head_expr})"),
        }
    };

    if rules.len() == 1 {
        let body = rule_to_select(&rules[0], &params)?;
        let head_expr = head_expression(&rules[0], &body)?;
        let mut sql = body.select_clause(&params);
        write!(
            sql,
            "\nGROUP BY {}\nHAVING {} {} {}",
            body.param_exprs(&params).join(", "),
            agg_sql(&head_expr),
            filter.op.symbol(),
            filter.threshold
        )
        .unwrap();
        Ok(sql)
    } else {
        // Union flock: inner UNION of per-rule selects producing
        // (params…, answer), outer group-by over the union.
        let mut inner = Vec::new();
        for rule in rules {
            let body = rule_to_select(rule, &params)?;
            let head_expr = head_expression(rule, &body)?;
            let mut cols: Vec<String> = body
                .param_exprs(&params)
                .iter()
                .zip(&params)
                .map(|(e, p)| format!("{e} AS p{p}"))
                .collect();
            cols.push(format!("{head_expr} AS answer"));
            inner.push(format!(
                "SELECT DISTINCT {}\n{}",
                cols.join(", "),
                body.render_from_where()
            ));
        }
        let param_cols: Vec<String> = params.iter().map(|p| format!("p{p}")).collect();
        Ok(format!(
            "SELECT {}\nFROM (\n{}\n) u\nGROUP BY {}\nHAVING {} {} {}",
            param_cols.join(", "),
            inner.join("\nUNION\n"),
            param_cols.join(", "),
            agg_sql("answer"),
            filter.op.symbol(),
            filter.threshold
        ))
    }
}

/// Render a query plan as a SQL script: one `CREATE TABLE` per
/// reduction step and a final `SELECT`.
pub fn plan_to_sql(plan: &QueryPlan) -> Result<String> {
    let mut out = String::new();
    let n = plan.steps.len();
    for (i, step) in plan.steps.iter().enumerate() {
        let step_flock = QueryFlock::new(step.query.clone(), *plan.flock.filter())?;
        let body = to_sql(&step_flock)?;
        if i + 1 < n {
            writeln!(out, "CREATE TABLE {} AS\n{};\n", step.output, body).unwrap();
        } else {
            writeln!(out, "-- final step\n{};", body).unwrap();
        }
    }
    Ok(out)
}

/// Alias and predicate bookkeeping for one rule's `FROM`/`WHERE`.
struct SelectBody {
    from: Vec<String>,
    wheres: Vec<String>,
    /// term rendered as `alias.col`, first occurrence.
    term_expr: Vec<(Term, String)>,
}

impl SelectBody {
    fn expr_of(&self, t: Term) -> Option<&str> {
        self.term_expr
            .iter()
            .find(|(u, _)| *u == t)
            .map(|(_, e)| e.as_str())
    }

    fn param_exprs(&self, params: &[String]) -> Vec<String> {
        params
            .iter()
            .map(|p| {
                self.expr_of(Term::param(p))
                    .expect("validated parameter binding")
                    .to_string()
            })
            .collect()
    }

    fn render_from_where(&self) -> String {
        let mut s = format!("FROM {}", self.from.join(", "));
        if !self.wheres.is_empty() {
            write!(s, "\nWHERE {}", self.wheres.join("\n  AND ")).unwrap();
        }
        s
    }

    fn select_clause(&self, params: &[String]) -> String {
        format!(
            "SELECT {}\n{}",
            self.param_exprs(params)
                .iter()
                .zip(params)
                .map(|(e, p)| format!("{e} AS p{p}"))
                .collect::<Vec<_>>()
                .join(", "),
            self.render_from_where()
        )
    }
}

/// Column name for position `i` of relation `pred` — the SQL rendering
/// does not know base schemas, so columns are positional (`c1`, `c2`…).
fn col_name(i: usize) -> String {
    format!("c{}", i + 1)
}

fn rule_to_select(rule: &ConjunctiveQuery, _params: &[String]) -> Result<SelectBody> {
    let mut body = SelectBody {
        from: Vec::new(),
        wheres: Vec::new(),
        term_expr: Vec::new(),
    };
    let mut alias_n = 0;
    for lit in &rule.body {
        match lit {
            Literal::Pos(atom) => {
                alias_n += 1;
                let alias = format!("t{alias_n}");
                body.from.push(format!("{} {alias}", atom.pred));
                bind_atom(&mut body, atom, &alias);
            }
            Literal::Neg(atom) => {
                let inner_alias = "n";
                let mut conds = Vec::new();
                for (i, &arg) in atom.args.iter().enumerate() {
                    let col = format!("{inner_alias}.{}", col_name(i));
                    match arg {
                        Term::Const(v) => conds.push(format!("{col} = {}", sql_value(v))),
                        open => {
                            let outer =
                                body.expr_of(open).ok_or_else(|| FlockError::UnsafeQuery {
                                    violation: format!(
                                        "negated subgoal term {open} unbound in SQL rendering"
                                    ),
                                })?;
                            conds.push(format!("{col} = {outer}"));
                        }
                    }
                }
                body.wheres.push(format!(
                    "NOT EXISTS (SELECT 1 FROM {} {inner_alias} WHERE {})",
                    atom.pred,
                    conds.join(" AND ")
                ));
            }
            Literal::Cmp(c) => {
                let render = |t: Term| -> Result<String> {
                    match t {
                        Term::Const(v) => Ok(sql_value(v)),
                        open => body.expr_of(open).map(str::to_string).ok_or_else(|| {
                            FlockError::UnsafeQuery {
                                violation: format!(
                                    "arithmetic term {open} unbound in SQL rendering"
                                ),
                            }
                        }),
                    }
                };
                let l = render(c.lhs)?;
                let r = render(c.rhs)?;
                body.wheres.push(format!("{l} {} {r}", c.op.symbol()));
            }
        }
    }
    Ok(body)
}

fn bind_atom(body: &mut SelectBody, atom: &Atom, alias: &str) {
    for (i, &arg) in atom.args.iter().enumerate() {
        let expr = format!("{alias}.{}", col_name(i));
        match arg {
            Term::Const(v) => body.wheres.push(format!("{expr} = {}", sql_value(v))),
            open => match body.expr_of(open) {
                Some(prev) => body.wheres.push(format!("{prev} = {expr}")),
                None => body.term_expr.push((open, expr)),
            },
        }
    }
}

fn head_expression(rule: &ConjunctiveQuery, body: &SelectBody) -> Result<String> {
    // COUNT(DISTINCT a || b) style for multi-var heads; single var is
    // the common case.
    let exprs: Vec<String> = rule
        .head
        .args
        .iter()
        .map(|&t| {
            body.expr_of(t)
                .map(str::to_string)
                .ok_or_else(|| FlockError::UnsafeQuery {
                    violation: format!("head term {t} unbound in SQL rendering"),
                })
        })
        .collect::<Result<_>>()?;
    Ok(exprs.join(" || '|' || "))
}

fn sql_value(v: qf_storage::Value) -> String {
    match v {
        qf_storage::Value::Int(i) => i.to_string(),
        qf_storage::Value::Sym(s) => format!("'{}'", s.as_str().replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plangen::direct_plan;

    #[test]
    fn fig1_shape() {
        // The Fig. 1 SQL: self-join, item inequality, GROUP BY, HAVING.
        let flock = QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            20,
        )
        .unwrap();
        let sql = to_sql(&flock).unwrap();
        assert!(sql.contains("FROM baskets t1, baskets t2"), "{sql}");
        assert!(sql.contains("t1.c1 = t2.c1"), "join on basket id: {sql}");
        assert!(sql.contains("t1.c2 < t2.c2"), "item order: {sql}");
        assert!(sql.contains("GROUP BY t1.c2, t2.c2"), "{sql}");
        assert!(sql.contains("HAVING COUNT(DISTINCT t1.c1) >= 20"), "{sql}");
    }

    #[test]
    fn negation_renders_not_exists() {
        let flock = QueryFlock::with_support(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
            20,
        )
        .unwrap();
        let sql = to_sql(&flock).unwrap();
        assert!(
            sql.contains("NOT EXISTS (SELECT 1 FROM causes n WHERE"),
            "{sql}"
        );
    }

    #[test]
    fn union_renders_union() {
        let flock = QueryFlock::parse(
            "QUERY:
             answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
             FILTER: COUNT(answer(*)) >= 20",
        )
        .unwrap();
        let sql = to_sql(&flock).unwrap();
        assert_eq!(sql.matches("UNION").count(), 2, "{sql}");
        assert!(sql.contains("GROUP BY p1, p2"), "{sql}");
    }

    #[test]
    fn plan_renders_create_tables() {
        let flock = QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            20,
        )
        .unwrap();
        let plan = direct_plan(&flock).unwrap();
        let sql = plan_to_sql(&plan).unwrap();
        assert!(sql.contains("-- final step"), "{sql}");
        assert!(
            !sql.contains("CREATE TABLE"),
            "direct plan has no reductions: {sql}"
        );
    }

    #[test]
    fn string_constants_escaped() {
        let flock =
            QueryFlock::with_support("answer(B) :- baskets(B,$1) AND baskets(B,\"o'brien\")", 5)
                .unwrap();
        let sql = to_sql(&flock).unwrap();
        assert!(sql.contains("'o''brien'"), "{sql}");
    }
}
