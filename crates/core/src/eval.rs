//! Direct and reference evaluation of query flocks.
//!
//! * [`evaluate_direct`] computes the flock with one monolithic plan —
//!   join everything, group by the parameters, apply the filter — i.e.
//!   exactly what the Fig. 1 SQL does. This is the baseline the
//!   generalized a-priori rewrites are measured against.
//! * [`evaluate_naive`] is the paper's *definition* made executable:
//!   "trying all such assignments in the query, evaluating the query,
//!   and seeing whether the result passes the filter test" (§2). It is
//!   exponentially slow by design and capped; its only job is to give
//!   tests an independently-computed ground truth.

use std::collections::BTreeSet;

use qf_datalog::{ConjunctiveQuery, Literal, Term};
use qf_engine::{execute_with, ExecContext};
use qf_storage::{Database, Relation, Schema, Tuple, Value};

use crate::compile::{compile_answer, filter_answer, JoinOrderStrategy};
use crate::error::{FlockError, Result};
use crate::filter::FilterAgg;
use crate::flock::QueryFlock;

/// Rebuild `rel` under a schema naming the flock's parameter columns.
pub(crate) fn as_flock_result(flock: &QueryFlock, rel: &Relation) -> Relation {
    let names: Vec<String> = flock.param_names();
    Relation::from_sorted_dedup(
        Schema::from_columns("flock_result", names),
        rel.tuples().to_vec(),
    )
}

/// Recover a flock result from a *scored* relation (`params…, agg`,
/// see [`crate::execute_plan_scored_with`]): keep rows whose aggregate
/// value passes `filter`, drop the aggregate column, and rebuild under
/// the flock-result schema. When the scored relation's baseline filter
/// [subsumes](crate::FilterCondition::subsumes) `filter`, the output is
/// bitwise identical to evaluating the flock cold with `filter` — both
/// are `from_sorted_dedup` over the same parameter tuples.
pub fn flock_result_from_scored(
    flock: &QueryFlock,
    scored: &Relation,
    filter: &crate::filter::FilterCondition,
) -> Relation {
    let n_params = scored.schema().arity() - 1;
    let cols: Vec<usize> = (0..n_params).collect();
    let tuples: Vec<Tuple> = scored
        .iter()
        .filter(|t| filter.accepts(t.get(n_params)))
        .map(|t| t.project(&cols))
        .collect();
    Relation::from_sorted_dedup(
        Schema::from_columns("flock_result", flock.param_names()),
        tuples,
    )
}

/// Evaluate the flock with a single monolithic plan (no a-priori
/// prefiltering). The join order within the plan is controlled by
/// `strategy`; [`JoinOrderStrategy::AsWritten`] reproduces the naive
/// SQL shape of Fig. 1.
pub fn evaluate_direct(
    flock: &QueryFlock,
    db: &Database,
    strategy: JoinOrderStrategy,
) -> Result<Relation> {
    evaluate_direct_with(flock, db, strategy, &ExecContext::unbounded())
}

/// [`evaluate_direct`] under an execution governor: the monolithic plan
/// (and the SUM-precondition scan) run with `ctx`'s budgets, deadline
/// and cancellation token.
pub fn evaluate_direct_with(
    flock: &QueryFlock,
    db: &Database,
    strategy: JoinOrderStrategy,
    ctx: &ExecContext,
) -> Result<Relation> {
    let answer = compile_answer(flock.query(), db, strategy)?;
    check_sum_weights(flock, db, &answer, ctx)?;
    let plan = filter_answer(&answer, &flock.query().rules()[0], flock.filter())?;
    let rel = execute_with(&plan, db, ctx)?;
    Ok(as_flock_result(flock, &rel))
}

/// For `SUM` filters, verify no negative weights reach the aggregate
/// (the §5 monotonicity precondition). Cheap: checks the base answer's
/// weight column min via one extra aggregation-free scan of the plan's
/// output statistics.
fn check_sum_weights(
    flock: &QueryFlock,
    db: &Database,
    answer: &crate::compile::CompiledRule,
    ctx: &ExecContext,
) -> Result<()> {
    if let FilterAgg::Sum(v) = flock.filter().agg {
        let rule0 = &flock.query().rules()[0];
        let pos = rule0
            .head
            .args
            .iter()
            .position(|&t| t == Term::Var(v))
            .ok_or_else(|| FlockError::FilterVarUnknown {
                var: format!("{v}"),
            })?;
        let col = answer.n_params + pos;
        let rel = execute_with(&answer.plan, db, ctx)?;
        if let Some(min) = rel.stats().column(col).min {
            if min < Value::int(0) {
                return Err(FlockError::NegativeWeight {
                    detail: format!("minimum weight in answer is {min}"),
                });
            }
        }
    }
    Ok(())
}

/// Cap on the number of parameter assignments [`evaluate_naive`] will
/// try.
pub const NAIVE_ASSIGNMENT_CAP: u128 = 2_000_000;

/// Evaluate the flock by literal generate-and-test over the active
/// domain of each parameter. Ground truth for tests; refuses inputs
/// that would exceed [`NAIVE_ASSIGNMENT_CAP`] assignments.
pub fn evaluate_naive(flock: &QueryFlock, db: &Database) -> Result<Relation> {
    let params: Vec<_> = flock.params().into_iter().collect();
    // Candidate values per parameter: every value seen in any column
    // where the parameter syntactically occurs in any rule.
    let mut domains: Vec<BTreeSet<Value>> = vec![BTreeSet::new(); params.len()];
    for rule in flock.query().rules() {
        for lit in &rule.body {
            let Some(atom) = lit.atom() else { continue };
            let Ok(rel) = db.get(atom.pred.as_str()) else {
                continue;
            };
            for (col, &arg) in atom.args.iter().enumerate() {
                if let Term::Param(p) = arg {
                    let i = params.iter().position(|&q| q == p).unwrap();
                    for t in rel.iter() {
                        domains[i].insert(t.get(col));
                    }
                }
            }
        }
    }

    let total: u128 = domains.iter().map(|d| d.len() as u128).product();
    if total > NAIVE_ASSIGNMENT_CAP {
        return Err(FlockError::NaiveTooLarge {
            assignments: total,
            cap: NAIVE_ASSIGNMENT_CAP,
        });
    }

    let domains: Vec<Vec<Value>> = domains
        .into_iter()
        .map(|d| d.into_iter().collect())
        .collect();
    // Generate-and-test is embarrassingly parallel across the first
    // parameter's candidate values: each worker owns its assignment
    // buffer and accepted list, and per-value results are concatenated
    // in domain order (canonicalized by the sorting builder anyway).
    let accepted: Vec<Tuple> = if params.is_empty() {
        let mut accepted = Vec::new();
        let mut assignment = Vec::new();
        try_assignments(
            flock,
            db,
            &params,
            &domains,
            0,
            &mut assignment,
            &mut accepted,
        )?;
        accepted
    } else {
        let per_value = qf_engine::par_items(
            &domains[0],
            qf_engine::default_threads(),
            |&v| -> Result<Vec<Tuple>> {
                let mut accepted = Vec::new();
                let mut assignment = vec![Value::int(0); params.len()];
                assignment[0] = v;
                try_assignments(
                    flock,
                    db,
                    &params,
                    &domains,
                    1,
                    &mut assignment,
                    &mut accepted,
                )?;
                Ok(accepted)
            },
        )?;
        per_value.into_iter().flatten().collect()
    };
    let schema = Schema::from_columns("flock_result", flock.param_names());
    Ok(Relation::from_tuples(schema, accepted))
}

fn try_assignments(
    flock: &QueryFlock,
    db: &Database,
    params: &[qf_storage::Symbol],
    domains: &[Vec<Value>],
    depth: usize,
    assignment: &mut Vec<Value>,
    accepted: &mut Vec<Tuple>,
) -> Result<()> {
    if depth == params.len() {
        if assignment_accepted(flock, db, params, assignment)? {
            accepted.push(Tuple::new(assignment.clone()));
        }
        return Ok(());
    }
    for &v in &domains[depth] {
        assignment[depth] = v;
        try_assignments(flock, db, params, domains, depth + 1, assignment, accepted)?;
    }
    Ok(())
}

/// Instantiate the flock's query at one parameter assignment and test
/// the filter on its answer.
fn assignment_accepted(
    flock: &QueryFlock,
    db: &Database,
    params: &[qf_storage::Symbol],
    assignment: &[Value],
) -> Result<bool> {
    let mut answers: BTreeSet<Tuple> = BTreeSet::new();
    for rule in flock.query().rules() {
        let grounded = ground_rule(rule, params, assignment);
        let compiled = crate::compile::compile_rule(&grounded, db, JoinOrderStrategy::AsWritten)?;
        // The reference evaluator stays ungoverned: it is the test
        // oracle and already caps its own work (NAIVE_ASSIGNMENT_CAP).
        let rel = execute_with(&compiled.plan, db, &ExecContext::unbounded())?;
        // Grounded rules have zero parameters; the compiled output is
        // exactly the head tuples.
        answers.extend(rel.iter().cloned());
    }
    // An assignment whose instantiated query has an *empty* answer is
    // never in the flock result: with, say, `COUNT < 5`, every value in
    // the (unbounded) parameter domain would vacuously qualify, and the
    // flock would not denote a finite relation. This mirrors the safety
    // restriction that motivates the paper's focus on support-type
    // filters.
    if answers.is_empty() {
        return Ok(false);
    }
    let agg_value = match flock.filter().agg {
        FilterAgg::Count => Value::int(answers.len() as i64),
        FilterAgg::Sum(v) | FilterAgg::Min(v) | FilterAgg::Max(v) => {
            let rule0 = &flock.query().rules()[0];
            let pos = rule0
                .head
                .args
                .iter()
                .position(|&t| t == Term::Var(v))
                .expect("validated head var");
            let vals = answers.iter().map(|t| t.get(pos));
            match flock.filter().agg {
                FilterAgg::Sum(_) => {
                    let mut sum = 0i64;
                    for val in vals {
                        let x = val.as_int().ok_or_else(|| FlockError::NegativeWeight {
                            detail: format!("non-integer weight {val}"),
                        })?;
                        if x < 0 {
                            return Err(FlockError::NegativeWeight {
                                detail: format!("weight {x}"),
                            });
                        }
                        sum = sum.saturating_add(x);
                    }
                    Value::int(sum)
                }
                FilterAgg::Min(_) => vals.min().unwrap(),
                _ => vals.max().unwrap(),
            }
        }
    };
    Ok(flock.filter().accepts(agg_value))
}

/// Substitute the parameter assignment into a rule, yielding a
/// parameter-free rule.
fn ground_rule(
    rule: &ConjunctiveQuery,
    params: &[qf_storage::Symbol],
    assignment: &[Value],
) -> ConjunctiveQuery {
    let subst = |t: Term| -> Term {
        if let Term::Param(p) = t {
            let i = params.iter().position(|&q| q == p).unwrap();
            Term::Const(assignment[i])
        } else {
            t
        }
    };
    let body = rule
        .body
        .iter()
        .map(|l| match l {
            Literal::Pos(a) => Literal::Pos(qf_datalog::Atom {
                pred: a.pred,
                args: a.args.iter().map(|&t| subst(t)).collect(),
            }),
            Literal::Neg(a) => Literal::Neg(qf_datalog::Atom {
                pred: a.pred,
                args: a.args.iter().map(|&t| subst(t)).collect(),
            }),
            Literal::Cmp(c) => Literal::Cmp(qf_datalog::Comparison::new(
                subst(c.lhs),
                c.op,
                subst(c.rhs),
            )),
        })
        .collect();
    ConjunctiveQuery::new(rule.head.clone(), body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basket_db() -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            vec![
                vec![Value::int(1), Value::str("beer")],
                vec![Value::int(1), Value::str("diapers")],
                vec![Value::int(2), Value::str("beer")],
                vec![Value::int(2), Value::str("diapers")],
                vec![Value::int(3), Value::str("beer")],
                vec![Value::int(3), Value::str("chips")],
            ],
        ));
        db
    }

    fn basket_flock(threshold: i64) -> QueryFlock {
        QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            threshold,
        )
        .unwrap()
    }

    #[test]
    fn direct_matches_naive_on_baskets() {
        let db = basket_db();
        for threshold in [1, 2, 3] {
            let flock = basket_flock(threshold);
            let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::AsWritten).unwrap();
            let naive = evaluate_naive(&flock, &db).unwrap();
            assert_eq!(
                direct.tuples(),
                naive.tuples(),
                "threshold {threshold} disagreement"
            );
        }
    }

    #[test]
    fn expected_pairs_found() {
        let db = basket_db();
        let rel = evaluate_direct(&basket_flock(2), &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(rel.len(), 1);
        let t = &rel.tuples()[0];
        assert_eq!(t.get(0), Value::str("beer"));
        assert_eq!(t.get(1), Value::str("diapers"));
        assert_eq!(rel.schema().columns(), &["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn weighted_flock_sums_importance() {
        let mut db = basket_db();
        db.insert(Relation::from_rows(
            Schema::new("importance", &["bid", "w"]),
            vec![
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(2), Value::int(5)],
                vec![Value::int(3), Value::int(1)],
            ],
        ));
        let flock = QueryFlock::parse(
            "QUERY:
             answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 AND importance(B,W)
             FILTER:
             SUM(answer.W) >= 15",
        )
        .unwrap();
        let rel = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        // beer+diapers: baskets 1,2 → 15 ✓; beer+chips: basket 3 → 1 ✗.
        assert_eq!(rel.len(), 1);
        let naive = evaluate_naive(&flock, &db).unwrap();
        assert_eq!(rel.tuples(), naive.tuples());
    }

    #[test]
    fn negative_weights_rejected_for_sum() {
        let mut db = basket_db();
        db.insert(Relation::from_rows(
            Schema::new("importance", &["bid", "w"]),
            vec![
                vec![Value::int(1), Value::int(-1)],
                vec![Value::int(2), Value::int(5)],
                vec![Value::int(3), Value::int(1)],
            ],
        ));
        let flock = QueryFlock::parse(
            "QUERY:
             answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 AND importance(B,W)
             FILTER:
             SUM(answer.W) >= 15",
        )
        .unwrap();
        assert!(matches!(
            evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy),
            Err(FlockError::NegativeWeight { .. })
        ));
    }

    #[test]
    fn union_flock_counts_across_rules() {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("inTitle", &["d", "w"]),
            vec![
                vec![Value::int(1), Value::str("alpha")],
                vec![Value::int(1), Value::str("beta")],
                vec![Value::int(2), Value::str("alpha")],
            ],
        ));
        db.insert(Relation::from_rows(
            Schema::new("inAnchor", &["a", "w"]),
            vec![vec![Value::int(100), Value::str("alpha")]],
        ));
        db.insert(Relation::from_rows(
            Schema::new("link", &["a", "src", "dst"]),
            vec![vec![Value::int(100), Value::int(2), Value::int(1)]],
        ));
        let flock = QueryFlock::parse(
            "QUERY:
             answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
             FILTER:
             COUNT(answer(*)) >= 2",
        )
        .unwrap();
        // (alpha, beta): together in title of doc 1, and anchor 100
        // (alpha) points to doc 1 whose title has beta → count 2.
        let rel = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(0), Value::str("alpha"));
        assert_eq!(rel.tuples()[0].get(1), Value::str("beta"));
        let naive = evaluate_naive(&flock, &db).unwrap();
        assert_eq!(rel.tuples(), naive.tuples());
    }

    #[test]
    fn naive_cap_enforced() {
        // 3 params over a large domain would blow the cap; simulate by
        // shrinking the cap? Instead: verify the arithmetic path by
        // checking a flock over a moderately sized domain still works.
        let db = basket_db();
        let flock = basket_flock(1);
        assert!(evaluate_naive(&flock, &db).is_ok());
    }
}
