//! `FILTER`-step query plans (§4.1) and the legality rule (§4.2).
//!
//! The paper's plan notation:
//!
//! ```text
//! R(P) := FILTER(P, Q, C)
//! ```
//!
//! "Create relation `R` to consist of one tuple for each assignment of
//! values for the parameters `P` such that with those parameter values
//! the result of query `Q` meets the condition `C`." A query plan is a
//! sequence of such steps; each step's query may use base relations and
//! the outputs of earlier steps.
//!
//! The **Rule for Generating Query Plans** (§4.2) constrains legal
//! plans; [`QueryPlan::validate`] enforces it literally:
//!
//! 1. every step uses the flock's own filter condition (structural here:
//!    steps do not carry conditions at all);
//! 2. every step defines a uniquely named relation;
//! 3. each step's query derives from the flock's by adding heads of
//!    previous steps as subgoals, then deleting subgoals while staying
//!    safe;
//! 4. the final step deletes nothing.

use std::collections::BTreeSet;

use qf_datalog::{is_safe, Atom, ConjunctiveQuery, Literal, Term, UnionQuery};
use qf_storage::Symbol;

use crate::error::{FlockError, Result};
use crate::flock::QueryFlock;

/// One `FILTER` step.
#[derive(Clone, Debug, PartialEq)]
pub struct FilterStep {
    /// Name of the relation the step defines (`okS`, `temp1`, …).
    pub output: String,
    /// The parameters `P` restricted by this step, sorted by name. They
    /// are the columns of the output relation.
    pub params: Vec<Symbol>,
    /// The step's query; its rules may reference earlier steps' outputs
    /// as ordinary subgoals (with parameter arguments).
    pub query: UnionQuery,
}

impl FilterStep {
    /// Build a step; `params` must equal the query's parameter set.
    pub fn new(output: impl Into<String>, query: UnionQuery) -> FilterStep {
        let params = query.params().into_iter().collect();
        FilterStep {
            output: output.into(),
            params,
            query,
        }
    }

    /// The subgoal later steps add to reference this step's output:
    /// `output($p1, …, $pk)`.
    pub fn head_subgoal(&self) -> Literal {
        Literal::Pos(Atom::new(
            &self.output,
            self.params.iter().map(|&p| Term::Param(p)).collect(),
        ))
    }

    /// Render in the paper's `R(P) := FILTER(P, Q, C)` notation.
    pub fn render(&self, condition: &str) -> String {
        let params: Vec<String> = self.params.iter().map(|p| format!("${p}")).collect();
        let mut q = String::new();
        for (i, rule) in self.query.rules().iter().enumerate() {
            if i > 0 {
                q.push_str("\n   ");
            }
            q.push_str(&rule.to_string());
        }
        format!(
            "{}({}) := FILTER(({}),\n   {q},\n   {condition}\n)",
            self.output,
            params.join(","),
            params.join(","),
        )
    }
}

/// A sequence of `FILTER` steps computing a flock.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryPlan {
    /// The flock this plan computes.
    pub flock: QueryFlock,
    /// The steps, in execution order. The last step produces the flock
    /// result.
    pub steps: Vec<FilterStep>,
}

impl QueryPlan {
    /// Build and validate a plan against the §4.2 rule.
    pub fn new(flock: QueryFlock, steps: Vec<FilterStep>) -> Result<QueryPlan> {
        let plan = QueryPlan { flock, steps };
        plan.validate()?;
        Ok(plan)
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the plan has no steps (never valid).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Names of the reduction steps (all but the final step).
    pub fn reduction_names(&self) -> Vec<&str> {
        self.steps[..self.steps.len() - 1]
            .iter()
            .map(|s| s.output.as_str())
            .collect()
    }

    /// Enforce the Rule for Generating Query Plans (§4.2).
    pub fn validate(&self) -> Result<()> {
        if self.steps.is_empty() {
            return Err(FlockError::IllegalPlan {
                detail: "a plan must have at least one step".to_string(),
            });
        }
        // Pruning with subquery upper bounds needs a monotone filter.
        if self.steps.len() > 1 && !self.flock.filter().is_monotone() {
            return Err(FlockError::NonMonotoneFilter);
        }

        // Rule 2: unique names, none colliding with base predicates.
        let mut names = BTreeSet::new();
        for step in &self.steps {
            if !names.insert(step.output.as_str()) {
                return Err(FlockError::IllegalPlan {
                    detail: format!("step name `{}` defined twice", step.output),
                });
            }
        }
        let base_preds = self.flock.query().predicates();
        for step in &self.steps {
            if base_preds.contains(&Symbol::intern(&step.output)) {
                return Err(FlockError::IllegalPlan {
                    detail: format!("step name `{}` collides with a base relation", step.output),
                });
            }
        }

        // Rule 3 per step; rule 4 for the last.
        let original = self.flock.query();
        let mut prior: Vec<&FilterStep> = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            let is_final = i == self.steps.len() - 1;
            self.validate_step(step, original, &prior, is_final)?;
            prior.push(step);
        }

        // The final step must restrict exactly the flock's parameters.
        let last = self.steps.last().unwrap();
        let flock_params: Vec<Symbol> = self.flock.params().into_iter().collect();
        if last.params != flock_params {
            return Err(FlockError::IllegalPlan {
                detail: format!(
                    "final step restricts [{}] but the flock's parameters are [{}]",
                    join_params(&last.params),
                    join_params(&flock_params)
                ),
            });
        }
        Ok(())
    }

    /// Check one step against rule 3 (and rule 4 when final): each of
    /// its rules must consist of literals drawn from the corresponding
    /// original rule plus prior-step head subgoals, must be safe, and —
    /// if final — must retain every original literal.
    fn validate_step(
        &self,
        step: &FilterStep,
        original: &UnionQuery,
        prior: &[&FilterStep],
        is_final: bool,
    ) -> Result<()> {
        if step.query.rules().len() != original.rules().len() {
            return Err(FlockError::IllegalPlan {
                detail: format!(
                    "step `{}` has {} rules but the flock has {} (a subquery must be \
                     formed per union branch, §3.4)",
                    step.output,
                    step.query.rules().len(),
                    original.rules().len()
                ),
            });
        }
        let prior_heads: Vec<Literal> = prior.iter().map(|s| s.head_subgoal()).collect();
        for (rule, orig) in step.query.rules().iter().zip(original.rules()) {
            if rule.head != orig.head {
                return Err(FlockError::IllegalPlan {
                    detail: format!(
                        "step `{}` changes a rule head from `{}` to `{}`",
                        step.output, orig.head, rule.head
                    ),
                });
            }
            for lit in &rule.body {
                let from_original = orig.body.contains(lit);
                let from_prior = prior_heads.contains(lit);
                if !from_original && !from_prior {
                    return Err(FlockError::IllegalPlan {
                        detail: format!(
                            "step `{}` uses subgoal `{lit}` which is neither in the \
                             original rule nor a previous step's head",
                            step.output
                        ),
                    });
                }
            }
            if is_final {
                for lit in &orig.body {
                    if !rule.body.contains(lit) {
                        return Err(FlockError::IllegalPlan {
                            detail: format!(
                                "final step `{}` deleted original subgoal `{lit}` (rule 4)",
                                step.output
                            ),
                        });
                    }
                }
            }
            if !is_safe(rule) {
                return Err(FlockError::IllegalPlan {
                    detail: format!("step `{}` rule `{rule}` is not safe", step.output),
                });
            }
        }
        Ok(())
    }

    /// Render the whole plan in the paper's notation (Fig. 5 style).
    pub fn render(&self) -> String {
        let cond = self
            .flock
            .filter()
            .render(&self.flock.query().head_pred().to_string());
        self.steps
            .iter()
            .map(|s| s.render(&cond))
            .collect::<Vec<_>>()
            .join(";\n")
    }
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

fn join_params(params: &[Symbol]) -> String {
    params
        .iter()
        .map(|p| format!("${p}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Build the final step of any plan: the original query plus the heads
/// of the given reduction steps (§4.2 rules 3b & 4).
pub(crate) fn final_step(
    flock: &QueryFlock,
    reductions: &[FilterStep],
    name: &str,
) -> Result<FilterStep> {
    let extra: Vec<Literal> = reductions.iter().map(|s| s.head_subgoal()).collect();
    let rules: Vec<ConjunctiveQuery> = flock
        .query()
        .rules()
        .iter()
        .map(|r| r.with_extra(extra.clone()))
        .collect();
    Ok(FilterStep::new(name, UnionQuery::new(rules)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_datalog::parse_query;

    fn medical_flock() -> QueryFlock {
        QueryFlock::with_support(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
            20,
        )
        .unwrap()
    }

    /// The Fig. 5 plan: okS, okM, then the full query + both reductions.
    fn fig5_plan() -> QueryPlan {
        let flock = medical_flock();
        let ok_s = FilterStep::new("okS", parse_query("answer(P) :- exhibits(P,$s)").unwrap());
        let ok_m = FilterStep::new("okM", parse_query("answer(P) :- treatments(P,$m)").unwrap());
        let final_ = final_step(&flock, &[ok_s.clone(), ok_m.clone()], "ok").unwrap();
        QueryPlan::new(flock, vec![ok_s, ok_m, final_]).unwrap()
    }

    #[test]
    fn fig5_plan_is_legal() {
        let plan = fig5_plan();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.reduction_names(), vec!["okS", "okM"]);
        let text = plan.render();
        assert!(text.contains("okS($s) := FILTER(($s)"));
        assert!(text.contains("COUNT(answer.P) >= 20") || text.contains("COUNT(answer(*)) >= 20"));
    }

    #[test]
    fn final_step_adds_prior_heads() {
        let plan = fig5_plan();
        let last = plan.steps.last().unwrap();
        let body_text = last.query.rules()[0].to_string();
        assert!(body_text.contains("okS($s)"));
        assert!(body_text.contains("okM($m)"));
        assert!(body_text.contains("NOT causes(D,$s)"));
    }

    #[test]
    fn duplicate_step_names_rejected() {
        let flock = medical_flock();
        let s1 = FilterStep::new("ok", parse_query("answer(P) :- exhibits(P,$s)").unwrap());
        let s2 = FilterStep::new("ok", parse_query("answer(P) :- treatments(P,$m)").unwrap());
        let final_ = final_step(&flock, &[s1.clone(), s2.clone()], "result").unwrap();
        let err = QueryPlan::new(flock, vec![s1, s2, final_]).unwrap_err();
        assert!(matches!(err, FlockError::IllegalPlan { .. }));
    }

    #[test]
    fn foreign_subgoals_rejected() {
        let flock = medical_flock();
        // A step using a subgoal that is not in the original query.
        let bad = FilterStep::new("bad", parse_query("answer(P) :- visits(P,$s)").unwrap());
        let final_ = final_step(&flock, std::slice::from_ref(&bad), "ok").unwrap();
        let err = QueryPlan::new(flock, vec![bad, final_]).unwrap_err();
        assert!(matches!(err, FlockError::IllegalPlan { .. }));
    }

    #[test]
    fn unsafe_step_rejected() {
        let flock = medical_flock();
        // diagnoses alone has no parameters → its param set is {} and a
        // FILTER on it is pointless but *safe*; instead use a step whose
        // rule is unsafe: NOT causes with partial bindings.
        let unsafe_step = FilterStep::new(
            "bad",
            parse_query("answer(P) :- exhibits(P,$s) AND NOT causes(D,$s)").unwrap(),
        );
        let final_ = final_step(&flock, std::slice::from_ref(&unsafe_step), "ok").unwrap();
        let err = QueryPlan::new(flock, vec![unsafe_step, final_]).unwrap_err();
        assert!(matches!(err, FlockError::IllegalPlan { .. }));
    }

    #[test]
    fn final_step_must_keep_all_subgoals() {
        let flock = medical_flock();
        // Final step missing the negated subgoal.
        let truncated = FilterStep::new(
            "ok",
            parse_query("answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D)")
                .unwrap(),
        );
        let err = QueryPlan::new(flock, vec![truncated]).unwrap_err();
        assert!(matches!(err, FlockError::IllegalPlan { .. }));
    }

    #[test]
    fn step_name_may_not_shadow_base_relation() {
        let flock = medical_flock();
        let shadow = FilterStep::new(
            "exhibits",
            parse_query("answer(P) :- exhibits(P,$s)").unwrap(),
        );
        let final_ = final_step(&flock, std::slice::from_ref(&shadow), "ok").unwrap();
        let err = QueryPlan::new(flock, vec![shadow, final_]).unwrap_err();
        assert!(matches!(err, FlockError::IllegalPlan { .. }));
    }

    #[test]
    fn non_monotone_filter_cannot_be_pruned() {
        let flock = QueryFlock::parse(
            "QUERY: answer(P) :- exhibits(P,$s) AND treatments(P,$m)
             FILTER: COUNT(answer.P) < 5",
        )
        .unwrap();
        let s = FilterStep::new("okS", parse_query("answer(P) :- exhibits(P,$s)").unwrap());
        let final_ = final_step(&flock, std::slice::from_ref(&s), "ok").unwrap();
        let err = QueryPlan::new(flock.clone(), vec![s, final_]).unwrap_err();
        assert!(matches!(err, FlockError::NonMonotoneFilter));
        // The single-step (direct) plan is still fine.
        let only = final_step(&flock, &[], "ok").unwrap();
        assert!(QueryPlan::new(flock, vec![only]).is_ok());
    }

    #[test]
    fn display_renders_paper_notation() {
        let text = fig5_plan().to_string();
        assert!(text.contains(":= FILTER"));
        assert!(text.lines().count() >= 3);
    }
}
