//! # qf-core — query flocks and the generalized a-priori optimizer
//!
//! The paper's contribution: a **query flock** is a parametrized query
//! plus a filter over its result; its value is the set of parameter
//! assignments whose instantiated query passes the filter (§2). This
//! crate implements flocks end to end:
//!
//! * [`flock`] / [`filter`] — the flock type, the paper's
//!   `QUERY:`/`FILTER:` notation, support and monotone filters (§2, §5).
//! * [`compile`] — compilation of (unions of) extended conjunctive
//!   queries to relational plans over `qf-engine`.
//! * [`eval`] — the direct (Fig. 1-shaped) evaluator and the naive
//!   generate-and-test reference semantics.
//! * [`plan`] — `FILTER`-step query plans (§4.1) with the §4.2
//!   legality rule.
//! * [`exec`] — plan execution with per-step instrumentation.
//! * [`plangen`] — plan generators: the direct plan, per-parameter-set
//!   reductions (§4.3 heuristic 1, Fig. 5), prefix chains (Fig. 7),
//!   and bounded exhaustive cost-based search.
//! * [`dynamic`] — dynamic filter selection during join-tree execution
//!   (§4.4, Figs. 8–9).
//! * [`sql`] — SQL rendering of flocks and plans (Fig. 1).
//!
//! ## Quickstart
//!
//! ```
//! use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};
//! use qf_storage::{Database, Relation, Schema, Value};
//!
//! let mut db = Database::new();
//! db.insert(Relation::from_rows(
//!     Schema::new("baskets", &["bid", "item"]),
//!     vec![
//!         vec![Value::int(1), Value::str("beer")],
//!         vec![Value::int(1), Value::str("diapers")],
//!         vec![Value::int(2), Value::str("beer")],
//!         vec![Value::int(2), Value::str("diapers")],
//!     ],
//! ));
//! let flock = QueryFlock::parse(
//!     "QUERY:  answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
//!      FILTER: COUNT(answer.B) >= 2",
//! ).unwrap();
//! let result = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
//! assert_eq!(result.len(), 1); // {beer, diapers}
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod delta;
pub mod dynamic;
pub mod error;
pub mod eval;
pub mod exec;
pub mod filter;
pub mod flock;
pub mod journal;
pub mod optimizer;
pub mod plan;
pub mod plangen;
pub mod program;
pub mod shard;
pub mod sql;

pub use compile::{
    compile_answer, compile_rule, filter_answer_scored, CompiledRule, JoinOrderStrategy,
};
pub use delta::{DeltaApply, DeltaLimits, FlockDelta};
pub use dynamic::{
    evaluate_dynamic, evaluate_dynamic_with, DecisionReason, DynamicConfig, DynamicDecision,
    DynamicReport,
};
pub use error::{FlockError, Result};
pub use eval::{evaluate_direct, evaluate_direct_with, evaluate_naive, flock_result_from_scored};
pub use exec::{
    execute_plan, execute_plan_journaled, execute_plan_scored_with, execute_plan_with,
    PlanExecution, ScoredExecution, StepReport,
};
pub use filter::{FilterAgg, FilterCondition};
pub use flock::QueryFlock;
pub use journal::{catalog_fingerprint, fingerprint_text, plan_fingerprint, RunJournal};
pub use optimizer::{Evaluation, Optimizer, OptimizerConfig, Strategy};
pub use plan::{FilterStep, QueryPlan};
pub use plangen::{
    best_plan, best_plan_with, chain_plan, direct_plan, enumerate_plans, estimate_plan_cost,
    estimate_plan_report, param_set_plan, single_param_plan, PlanCostReport, StepEstimate,
};
pub use program::FlockProgram;
pub use shard::{
    evaluate_scored_partial, is_vacuous, merge_scored_partials, partial_flock, partition_database,
    partition_relation, replica_workers, scored_schema, shard_key_pos, shard_of, shardable_program,
    stable_value_hash, vacuous_filter, worker_fragments,
};
pub use sql::{plan_to_sql, to_sql};
// Governor types, re-exported so downstream crates can budget flock
// evaluation without depending on qf-engine directly.
pub use qf_engine::{
    default_threads, env_mem_budget, CancelToken, Degradation, EngineError, ExecContext, ExecStats,
    Resource,
};
