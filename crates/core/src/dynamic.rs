//! Dynamic selection of filter steps (§4.4, Figs. 8–9).
//!
//! "Instead of deciding on subqueries in advance, we let the sizes of
//! intermediate relations *after we compute them* determine whether or
//! not to apply a filter step." This evaluator:
//!
//! 1. chooses a join order for the rule's positive subgoals up front
//!    (the paper: "our idea is independent of how the join order is
//!    actually chosen");
//! 2. materializes the join pipeline one subgoal at a time, applying
//!    negations and comparisons as soon as they are bound;
//! 3. after each materialization, if the intermediate binds one or more
//!    parameters **and** every head variable, considers a `FILTER`:
//!    * **first sighting** of that parameter set — filter when the
//!      observed tuples-per-assignment ratio is *low* compared with the
//!      support threshold ("if low, then we expect a lot of
//!      value-assignments to be eliminated");
//!    * **seen before** — filter when the ratio is significantly lower
//!      than at the previous sighting ("significantly lower than it was
//!      at any previous step that computed a relation with the same set
//!      of parameters");
//! 4. always filters at the root, "simply because that filtering is
//!    necessary to find the answer to the query flock."
//!
//! Each decision is recorded in a [`DynamicDecision`] so experiments can
//! show *why* the dynamic strategy matched (or beat) the best static
//! plan without knowing the data regime in advance.

use qf_datalog::{Atom, Term};
use qf_engine::{
    execute_with, AggFn, EngineError, ExecContext, Operand, PhysicalPlan, Predicate, Resource,
};
use qf_storage::{Database, FastMap, FastSet, HashIndex, Relation, Schema, Symbol, Tuple, Value};

use crate::compile::{atom_order, build_leaf, Binding, JoinOrderStrategy};
use crate::error::{FlockError, Result};
use crate::filter::FilterAgg;
use crate::flock::QueryFlock;

/// Tuning knobs for the §4.4 decision procedure.
#[derive(Clone, Copy, Debug)]
pub struct DynamicConfig {
    /// First sighting of a parameter set: filter when
    /// `tuples/assignment < first_sight_factor × threshold`.
    pub first_sight_factor: f64,
    /// Repeat sighting: filter when the ratio has fallen below
    /// `improvement_factor ×` the ratio recorded at the last sighting.
    pub improvement_factor: f64,
    /// Join-order chooser used for step 1.
    pub strategy: JoinOrderStrategy,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            first_sight_factor: 1.0,
            improvement_factor: 0.5,
            strategy: JoinOrderStrategy::Greedy,
        }
    }
}

/// Why the evaluator did or did not filter at a decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionReason {
    /// New parameter set, ratio below the threshold test → filtered.
    FirstSightLow,
    /// New parameter set, ratio too high to bother → not filtered.
    FirstSightHigh,
    /// Seen before and the ratio dropped enough → filtered.
    ImprovedRatio,
    /// Seen before but not enough improvement → not filtered.
    NoImprovement,
    /// No parameters bound yet → cannot filter.
    NoParams,
    /// Some head variable unbound → a support count would be unsafe
    /// (mirrors §4.4: "the query with just this subgoal is not safe").
    HeadUnbound,
    /// The root: filtering is the answer itself → always filtered.
    FinalMandatory,
    /// The filter aggregate is not `COUNT`; intermediate pruning with
    /// partial answers is not attempted (only the final filter runs).
    NonCountFilter,
    /// A voluntary filter looked worthwhile but its probe blew the
    /// resource budget → skipped. Sound: a-priori pruning is optional,
    /// so only pruning power is lost. Recorded as a degradation in the
    /// governor's [`qf_engine::ExecStats`].
    BudgetExhausted,
}

/// One decision point in a dynamic evaluation.
#[derive(Clone, Debug)]
pub struct DynamicDecision {
    /// Label of the subgoal just joined (or "final").
    pub after_subgoal: String,
    /// The parameter set bound at this point, sorted.
    pub param_set: Vec<String>,
    /// Tuples in the intermediate.
    pub tuples: usize,
    /// Distinct parameter assignments in the intermediate.
    pub assignments: usize,
    /// `tuples / assignments` (0 when empty).
    pub ratio: f64,
    /// Whether a filter step was applied.
    pub filtered: bool,
    /// Why.
    pub reason: DecisionReason,
    /// Assignments surviving the filter, when one was applied.
    pub survivors: Option<usize>,
}

/// The outcome of a dynamic evaluation.
#[derive(Clone, Debug)]
pub struct DynamicReport {
    /// The flock result (parameter assignments, columns named after the
    /// parameters).
    pub result: Relation,
    /// Every decision point, in order.
    pub decisions: Vec<DynamicDecision>,
    /// Total tuples materialized across intermediates (work proxy).
    pub total_tuples: usize,
}

/// Evaluate a **single-rule** flock with dynamic filter selection.
///
/// Union flocks are rejected: sound pruning across a union needs the
/// union-of-subqueries construction (§3.4), which is a static-plan
/// notion; use [`crate::plangen`] for those.
pub fn evaluate_dynamic(
    flock: &QueryFlock,
    db: &Database,
    config: &DynamicConfig,
) -> Result<DynamicReport> {
    evaluate_dynamic_with(flock, db, config, &ExecContext::unbounded())
}

/// [`evaluate_dynamic`] under an execution governor. The join pipeline
/// and the mandatory final filter run with `ctx`'s budgets — exceeding
/// them is a hard error. Each *voluntary* FILTER probe runs under a
/// [`ExecContext::subcontext`] sized to the parent's remaining budget;
/// if the probe blows it, the candidate filter is skipped (recorded as
/// a [`DecisionReason::BudgetExhausted`] decision and a degradation in
/// the governor's stats) and evaluation continues unpruned — a-priori
/// pruning stays sound, only pruning power is lost.
pub fn evaluate_dynamic_with(
    flock: &QueryFlock,
    db: &Database,
    config: &DynamicConfig,
    ctx: &ExecContext,
) -> Result<DynamicReport> {
    let Some(rule) = flock.single_rule() else {
        return Err(FlockError::IllegalPlan {
            detail: "dynamic evaluation is defined for single-rule flocks".to_string(),
        });
    };
    let rule = rule.clone();
    let threshold = flock.filter().threshold;
    // Intermediate pruning keeps assignments whose partial support
    // reaches the threshold — an upper-bound argument that is only
    // sound for monotone COUNT filters (≥/>). Anything else gets the
    // mandatory final filter only.
    let count_filter =
        matches!(flock.filter().agg, FilterAgg::Count) && flock.filter().is_monotone();

    let positive: Vec<&Atom> = rule.positive_atoms().collect();
    if positive.is_empty() {
        return Err(FlockError::IllegalPlan {
            detail: "rule has no positive subgoals".to_string(),
        });
    }
    let order = atom_order(&positive, db, config.strategy);

    let params: Vec<Symbol> = rule.params().into_iter().collect();
    let head_terms: Vec<Term> = rule.head.args.clone();

    let mut pending_neg: Vec<&Atom> = rule.negated_atoms().collect();
    let mut pending_cmp: Vec<_> = rule.comparisons().collect();

    let mut binding = Binding::default();
    let mut current: Option<Relation> = None;
    let mut decisions = Vec::new();
    let mut total_tuples = 0usize;
    // Last observed ratio per parameter set.
    let mut seen_ratio: FastMap<Vec<Symbol>, f64> = FastMap::default();

    for &ai in &order {
        let atom = positive[ai];
        let leaf = build_leaf(atom);
        let leaf_rel = execute_with(&leaf.plan, db, ctx)?;

        current = Some(match current.take() {
            None => {
                for (col, term) in leaf.terms.iter().enumerate() {
                    if let Some(t) = term {
                        binding.bind(*t, col);
                    }
                }
                leaf_rel
            }
            Some(cur) => {
                let mut keys = Vec::new();
                let width = cur.schema().arity();
                for (col, term) in leaf.terms.iter().enumerate() {
                    if let Some(t) = term {
                        if let Some(lc) = binding.col_of(*t) {
                            keys.push((lc, col));
                        }
                    }
                }
                let joined = join_materialized(&cur, &leaf_rel, &keys, ctx)?;
                for (col, term) in leaf.terms.iter().enumerate() {
                    if let Some(t) = term {
                        binding.bind(*t, width + col);
                    }
                }
                joined
            }
        });

        // Apply any now-bound comparisons and negations.
        let cur = current.take().unwrap();
        let cur =
            apply_pending_materialized(cur, &binding, db, &mut pending_neg, &mut pending_cmp, ctx)?;
        total_tuples += cur.len();

        // Decision point.
        let bound_params: Vec<Symbol> = params
            .iter()
            .copied()
            .filter(|&p| binding.col_of(Term::Param(p)).is_some())
            .collect();
        let head_bound = head_terms.iter().all(|&t| binding.col_of(t).is_some());

        let decision_label = atom.to_string();
        if bound_params.is_empty() {
            decisions.push(decision_skip(
                &decision_label,
                &[],
                &cur,
                DecisionReason::NoParams,
            ));
            current = Some(cur);
            continue;
        }
        if !head_bound {
            decisions.push(decision_skip(
                &decision_label,
                &bound_params,
                &cur,
                DecisionReason::HeadUnbound,
            ));
            current = Some(cur);
            continue;
        }
        if !count_filter {
            decisions.push(decision_skip(
                &decision_label,
                &bound_params,
                &cur,
                DecisionReason::NonCountFilter,
            ));
            current = Some(cur);
            continue;
        }

        let param_cols: Vec<usize> = bound_params
            .iter()
            .map(|&p| binding.col_of(Term::Param(p)).unwrap())
            .collect();
        let head_cols: Vec<usize> = head_terms
            .iter()
            .map(|&t| binding.col_of(t).unwrap())
            .collect();
        let assignments = distinct_projection(&cur, &param_cols);
        let ratio = if assignments == 0 {
            0.0
        } else {
            cur.len() as f64 / assignments as f64
        };

        let (should_filter, reason) = match seen_ratio.get(&bound_params) {
            None => {
                if ratio < config.first_sight_factor * threshold as f64 {
                    (true, DecisionReason::FirstSightLow)
                } else {
                    (false, DecisionReason::FirstSightHigh)
                }
            }
            Some(&prev) => {
                if ratio < config.improvement_factor * prev {
                    (true, DecisionReason::ImprovedRatio)
                } else {
                    (false, DecisionReason::NoImprovement)
                }
            }
        };

        if should_filter {
            // The probe is voluntary side-work: give it its own budget
            // (whatever the parent could still afford) so a blown probe
            // degrades to "skip this filter" instead of failing the
            // whole evaluation. Deadline/cancellation still propagate
            // as hard errors — time is global, rows/memory are not.
            let probe = ctx.subcontext(ctx.remaining_rows(), ctx.remaining_bytes());
            match prune_by_support(&cur, &param_cols, &head_cols, threshold, &probe) {
                Ok((pruned, survivors)) => {
                    total_tuples += pruned.len();
                    let new_assignments = survivors;
                    let new_ratio = if new_assignments == 0 {
                        0.0
                    } else {
                        pruned.len() as f64 / new_assignments as f64
                    };
                    seen_ratio.insert(bound_params.clone(), new_ratio);
                    decisions.push(DynamicDecision {
                        after_subgoal: decision_label,
                        param_set: bound_params.iter().map(|p| p.to_string()).collect(),
                        tuples: cur.len(),
                        assignments,
                        ratio,
                        filtered: true,
                        reason,
                        survivors: Some(survivors),
                    });
                    current = Some(pruned);
                }
                Err(EngineError::ResourceExhausted {
                    resource: Resource::Rows | Resource::Memory,
                    ..
                }) => {
                    ctx.record_degradation(
                        "dynamic-filter",
                        format!(
                            "skipped voluntary FILTER after `{decision_label}`: \
                             probe budget exhausted (pruning power lost, result unaffected)"
                        ),
                    );
                    seen_ratio.insert(bound_params.clone(), ratio);
                    decisions.push(DynamicDecision {
                        after_subgoal: decision_label,
                        param_set: bound_params.iter().map(|p| p.to_string()).collect(),
                        tuples: cur.len(),
                        assignments,
                        ratio,
                        filtered: false,
                        reason: DecisionReason::BudgetExhausted,
                        survivors: None,
                    });
                    current = Some(cur);
                }
                Err(e) => return Err(e.into()),
            }
        } else {
            seen_ratio.insert(bound_params.clone(), ratio);
            decisions.push(DynamicDecision {
                after_subgoal: decision_label,
                param_set: bound_params.iter().map(|p| p.to_string()).collect(),
                tuples: cur.len(),
                assignments,
                ratio,
                filtered: false,
                reason,
                survivors: None,
            });
            current = Some(cur);
        }
    }

    let cur = current.expect("at least one subgoal");
    debug_assert!(pending_neg.is_empty() && pending_cmp.is_empty());

    // Mandatory final filter (the flock's own condition).
    let param_cols: Vec<usize> = params
        .iter()
        .map(|&p| binding.col_of(Term::Param(p)).unwrap())
        .collect();
    let head_cols: Vec<usize> = head_terms
        .iter()
        .map(|&t| binding.col_of(t).unwrap())
        .collect();
    let result = final_filter(flock, &cur, &param_cols, &head_cols, ctx)?;
    decisions.push(DynamicDecision {
        after_subgoal: "final".to_string(),
        param_set: params.iter().map(|p| p.to_string()).collect(),
        tuples: cur.len(),
        assignments: distinct_projection(&cur, &param_cols),
        ratio: 0.0,
        filtered: true,
        reason: DecisionReason::FinalMandatory,
        survivors: Some(result.len()),
    });

    Ok(DynamicReport {
        result,
        decisions,
        total_tuples,
    })
}

fn decision_skip(
    label: &str,
    params: &[Symbol],
    cur: &Relation,
    reason: DecisionReason,
) -> DynamicDecision {
    DynamicDecision {
        after_subgoal: label.to_string(),
        param_set: params.iter().map(|p| p.to_string()).collect(),
        tuples: cur.len(),
        assignments: 0,
        ratio: 0.0,
        filtered: false,
        reason,
        survivors: None,
    }
}

/// Join of two materialized relations (output: left ++ right),
/// governed: every output tuple is charged to `ctx` *before* it is
/// materialized, so a budgeted evaluation cannot blow up here.
/// Delegates to [`qf_engine::join_auto_with`], which picks the sorted
/// merge on leading-key layouts and otherwise builds the hash table on
/// the smaller side with a parallel probe.
fn join_materialized(
    left: &Relation,
    right: &Relation,
    keys: &[(usize, usize)],
    ctx: &ExecContext,
) -> qf_engine::Result<Relation> {
    ctx.enter("DynJoin")?;
    Ok(qf_engine::join_auto_with(left, right, keys, ctx)?.renamed("dyn_join"))
}

/// Apply bound comparisons (selection) and negations (antijoin) to a
/// materialized intermediate.
fn apply_pending_materialized<'a>(
    mut cur: Relation,
    binding: &Binding,
    db: &Database,
    pending_neg: &mut Vec<&'a Atom>,
    pending_cmp: &mut Vec<&'a qf_datalog::Comparison>,
    ctx: &ExecContext,
) -> Result<Relation> {
    let mut i = 0;
    while i < pending_cmp.len() {
        let c = pending_cmp[i];
        let terms: Vec<Term> = c.terms().collect();
        if binding.binds_all(&terms) {
            let to_operand = |t: Term| match t {
                Term::Const(v) => Operand::Const(v),
                open => Operand::Col(binding.col_of(open).unwrap()),
            };
            let pred = Predicate {
                lhs: to_operand(c.lhs),
                op: c.op,
                rhs: to_operand(c.rhs),
            };
            let tuples: Vec<Tuple> = cur.iter().filter(|t| pred.eval(t)).cloned().collect();
            cur = Relation::from_sorted_dedup(cur.schema().clone(), tuples);
            pending_cmp.swap_remove(i);
        } else {
            i += 1;
        }
    }
    let mut i = 0;
    while i < pending_neg.len() {
        let atom = pending_neg[i];
        let open: Vec<Term> = atom
            .args
            .iter()
            .copied()
            .filter(|t| !t.is_const())
            .collect();
        if binding.binds_all(&open) {
            let leaf = build_leaf(atom);
            let leaf_rel = execute_with(&leaf.plan, db, ctx)?;
            let mut lk = Vec::new();
            let mut rk = Vec::new();
            for (col, term) in leaf.terms.iter().enumerate() {
                if let Some(t) = term {
                    lk.push(binding.col_of(*t).unwrap());
                    rk.push(col);
                }
            }
            let idx = HashIndex::build(&leaf_rel, &rk);
            let tuples: Vec<Tuple> = cur
                .iter()
                .filter(|t| !idx.contains_key(&t.project(&lk)))
                .cloned()
                .collect();
            cur = Relation::from_sorted_dedup(cur.schema().clone(), tuples);
            pending_neg.swap_remove(i);
        } else {
            i += 1;
        }
    }
    Ok(cur)
}

/// Count distinct projections of `rel` onto `cols`.
fn distinct_projection(rel: &Relation, cols: &[usize]) -> usize {
    let mut seen: FastSet<Tuple> = FastSet::default();
    for t in rel.iter() {
        seen.insert(t.project(cols));
    }
    seen.len()
}

/// Keep only tuples whose parameter assignment has at least `threshold`
/// distinct head-tuple combinations. Returns the pruned relation and
/// the number of surviving assignments. Governed: the pair set and the
/// pruned output are charged against `ctx` (callers run this under a
/// probe subcontext so exhaustion degrades instead of failing).
fn prune_by_support(
    cur: &Relation,
    param_cols: &[usize],
    head_cols: &[usize],
    threshold: i64,
    ctx: &ExecContext,
) -> qf_engine::Result<(Relation, usize)> {
    ctx.enter("DynPrune")?;
    // Distinct (params, head) pairs → count per params.
    let mut proj: Vec<usize> = param_cols.to_vec();
    proj.extend_from_slice(head_cols);
    let mut pairs: FastSet<Tuple> = FastSet::default();
    for t in cur.iter() {
        ctx.charge_row(proj.len())?;
        pairs.insert(t.project(&proj));
    }
    let key_len = param_cols.len();
    let mut counts: FastMap<Tuple, i64> = FastMap::default();
    for p in &pairs {
        ctx.tick()?;
        let key = p.project(&(0..key_len).collect::<Vec<_>>());
        *counts.entry(key).or_insert(0) += 1;
    }
    let survivors: FastSet<Tuple> = counts
        .into_iter()
        .filter(|(_, c)| *c >= threshold)
        .map(|(k, _)| k)
        .collect();
    let width = cur.schema().arity();
    let mut tuples: Vec<Tuple> = Vec::new();
    for t in cur.iter() {
        ctx.tick()?;
        if survivors.contains(&t.project(param_cols)) {
            ctx.charge_row(width)?;
            tuples.push(t.clone());
        }
    }
    let n = survivors.len();
    Ok((Relation::from_sorted_dedup(cur.schema().clone(), tuples), n))
}

/// The mandatory root filter, honouring the flock's aggregate.
fn final_filter(
    flock: &QueryFlock,
    cur: &Relation,
    param_cols: &[usize],
    head_cols: &[usize],
    ctx: &ExecContext,
) -> Result<Relation> {
    // Project to distinct (params, head), then aggregate by params.
    let mut proj: Vec<usize> = param_cols.to_vec();
    proj.extend_from_slice(head_cols);
    let mut tmp = Database::new();
    const TMP: &str = "__dyn_answer";
    let projected: Vec<Tuple> = cur.iter().map(|t| t.project(&proj)).collect();
    let names: Vec<String> = (0..proj.len()).map(|i| format!("c{i}")).collect();
    tmp.insert(Relation::from_tuples(
        Schema::from_columns(TMP, names),
        projected,
    ));

    let group: Vec<usize> = (0..param_cols.len()).collect();
    let rule0 = &flock.query().rules()[0];
    let agg = match flock.filter().agg {
        FilterAgg::Count => AggFn::Count,
        FilterAgg::Sum(v) | FilterAgg::Min(v) | FilterAgg::Max(v) => {
            let pos = rule0
                .head
                .args
                .iter()
                .position(|&t| t == Term::Var(v))
                .ok_or_else(|| FlockError::FilterVarUnknown {
                    var: format!("{v}"),
                })?;
            let col = param_cols.len() + pos;
            match flock.filter().agg {
                FilterAgg::Sum(_) => AggFn::Sum(col),
                FilterAgg::Min(_) => AggFn::Min(col),
                _ => AggFn::Max(col),
            }
        }
    };
    let plan = PhysicalPlan::project(
        PhysicalPlan::select(
            PhysicalPlan::aggregate(PhysicalPlan::scan(TMP), group.clone(), agg),
            vec![Predicate::col_const(
                group.len(),
                flock.filter().op,
                Value::int(flock.filter().threshold),
            )],
        ),
        group,
    );
    let rel = execute_with(&plan, &tmp, ctx)?;
    Ok(crate::eval::as_flock_result(flock, &rel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_direct;

    /// Skewed basket data: hot pair in every basket, singleton noise.
    fn basket_db() -> Database {
        let mut rows = Vec::new();
        for b in 0..40i64 {
            rows.push(vec![Value::int(b), Value::str("hot1")]);
            rows.push(vec![Value::int(b), Value::str("hot2")]);
            for j in 0..5i64 {
                rows.push(vec![Value::int(b), Value::str(&format!("noise_{b}_{j}"))]);
            }
        }
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows,
        ));
        db
    }

    fn basket_flock(threshold: i64) -> QueryFlock {
        QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            threshold,
        )
        .unwrap()
    }

    #[test]
    fn dynamic_matches_direct() {
        let db = basket_db();
        for threshold in [2, 20, 40] {
            let flock = basket_flock(threshold);
            let report = evaluate_dynamic(&flock, &db, &DynamicConfig::default()).unwrap();
            let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
            assert_eq!(
                report.result.tuples(),
                direct.tuples(),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn skewed_data_triggers_early_filter() {
        let db = basket_db();
        // Items average 40*7/282 ≈ 1 tuple per item value, far below
        // threshold 20 → the first decision must filter.
        let report = evaluate_dynamic(&basket_flock(20), &db, &DynamicConfig::default()).unwrap();
        let first_filterable = report
            .decisions
            .iter()
            .find(|d| {
                !matches!(
                    d.reason,
                    DecisionReason::NoParams | DecisionReason::HeadUnbound
                )
            })
            .expect("some decision");
        assert!(first_filterable.filtered, "{first_filterable:?}");
        assert_eq!(first_filterable.reason, DecisionReason::FirstSightLow);
        // And the final decision is always a filter.
        assert_eq!(
            report.decisions.last().unwrap().reason,
            DecisionReason::FinalMandatory
        );
    }

    #[test]
    fn dense_data_defers_filtering() {
        // Every item in ≥ 30 baskets: ratio ≈ 30 ≥ threshold 3 → the
        // evaluator should NOT filter at first sight of a parameter.
        let mut rows = Vec::new();
        for b in 0..30i64 {
            for i in 0..4i64 {
                rows.push(vec![Value::int(b), Value::str(&format!("common{i}"))]);
            }
        }
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows,
        ));
        let flock = basket_flock(3);
        let report = evaluate_dynamic(&flock, &db, &DynamicConfig::default()).unwrap();
        let first = report
            .decisions
            .iter()
            .find(|d| d.reason == DecisionReason::FirstSightHigh);
        assert!(first.is_some(), "decisions: {:?}", report.decisions);
        // Results still correct.
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(report.result.tuples(), direct.tuples());
    }

    #[test]
    fn medical_dynamic_with_negation() {
        let mut db = Database::new();
        let mut diagnoses = Vec::new();
        let mut exhibits = Vec::new();
        let mut treatments = Vec::new();
        for p in 1..=3i64 {
            diagnoses.push(vec![Value::int(p), Value::str("flu")]);
            exhibits.push(vec![Value::int(p), Value::str("headache")]);
            treatments.push(vec![Value::int(p), Value::str("zorix")]);
        }
        for p in 4..=5i64 {
            diagnoses.push(vec![Value::int(p), Value::str("flu")]);
            exhibits.push(vec![Value::int(p), Value::str("fever")]);
            treatments.push(vec![Value::int(p), Value::str("zorix")]);
        }
        db.insert(Relation::from_rows(
            Schema::new("diagnoses", &["p", "d"]),
            diagnoses,
        ));
        db.insert(Relation::from_rows(
            Schema::new("exhibits", &["p", "s"]),
            exhibits,
        ));
        db.insert(Relation::from_rows(
            Schema::new("treatments", &["p", "m"]),
            treatments,
        ));
        db.insert(Relation::from_rows(
            Schema::new("causes", &["d", "s"]),
            vec![vec![Value::str("flu"), Value::str("fever")]],
        ));
        let flock = QueryFlock::with_support(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
            2,
        )
        .unwrap();
        let report = evaluate_dynamic(&flock, &db, &DynamicConfig::default()).unwrap();
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(report.result.tuples(), direct.tuples());
        assert_eq!(report.result.len(), 1);
    }

    #[test]
    fn repeat_sightings_use_improvement_rule() {
        // Two atoms bind the same parameter set {$1}: baskets(B,$1) and
        // stock($1,Q). With a high first-sight ratio on the first leaf
        // (skip) and a much lower ratio after the join, the second
        // decision must take the ImprovedRatio/NoImprovement branch.
        let mut db = Database::new();
        let mut rows = Vec::new();
        // 4 items, each in 25 baskets: first-sight ratio 25 ≥ threshold 5.
        for b in 0..25i64 {
            for i in 0..4i64 {
                rows.push(vec![Value::int(b), Value::str(&format!("item{i}"))]);
            }
        }
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows,
        ));
        // stock(Item, Quality): many quality rows for item0, one for the
        // others — the join collapses the per-item ratio for most items.
        let mut stock = Vec::new();
        for q in 0..30i64 {
            stock.push(vec![Value::str("item0"), Value::int(q)]);
        }
        for i in 1..4i64 {
            stock.push(vec![Value::str(&format!("item{i}")), Value::int(0)]);
        }
        db.insert(Relation::from_rows(
            Schema::new("stock", &["item", "q"]),
            stock,
        ));

        let flock =
            QueryFlock::with_support("answer(B) :- baskets(B,$1) AND stock($1,Q)", 5).unwrap();
        let config = DynamicConfig {
            strategy: JoinOrderStrategy::AsWritten,
            ..DynamicConfig::default()
        };
        let report = evaluate_dynamic(&flock, &db, &config).unwrap();
        let repeat = report
            .decisions
            .iter()
            .find(|d| {
                matches!(
                    d.reason,
                    DecisionReason::ImprovedRatio | DecisionReason::NoImprovement
                )
            })
            .expect("second sighting of {$1} must use the improvement rule");
        assert_eq!(repeat.param_set, vec!["1".to_string()]);
        // And the answer is still right.
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(report.result.tuples(), direct.tuples());
    }

    #[test]
    fn union_flocks_rejected() {
        let flock = QueryFlock::parse(
            "QUERY:
             answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
             answer(A) :- inAnchor(A,$1) AND inAnchor(A,$2) AND $1 < $2
             FILTER: COUNT(answer(*)) >= 2",
        )
        .unwrap();
        let db = Database::new();
        assert!(matches!(
            evaluate_dynamic(&flock, &db, &DynamicConfig::default()),
            Err(FlockError::IllegalPlan { .. })
        ));
    }

    #[test]
    fn weighted_flock_final_filter_only() {
        let mut db = basket_db();
        let rows: Vec<Vec<Value>> = (0..40i64)
            .map(|b| vec![Value::int(b), Value::int(1)])
            .collect();
        db.insert(Relation::from_rows(
            Schema::new("importance", &["bid", "w"]),
            rows,
        ));
        let flock = QueryFlock::parse(
            "QUERY:
             answer(B,W) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 AND importance(B,W)
             FILTER: SUM(answer.W) >= 40",
        )
        .unwrap();
        let report = evaluate_dynamic(&flock, &db, &DynamicConfig::default()).unwrap();
        assert!(report
            .decisions
            .iter()
            .any(|d| d.reason == DecisionReason::NonCountFilter
                || d.reason == DecisionReason::HeadUnbound));
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
        assert_eq!(report.result.tuples(), direct.tuples());
        assert_eq!(report.result.len(), 1); // only (hot1, hot2) sums to 40.
    }
}
