//! The flock optimizer facade.
//!
//! The paper positions query flocks as something "used either in a
//! general-purpose mining system or in a next generation of
//! conventional query optimizers" (§1). This module is that front
//! door: hand it a flock and a database, and it picks an evaluation
//! strategy — static cost-based plan search (§4.2–4.3), dynamic filter
//! selection (§4.4), or plain direct evaluation — runs it, and reports
//! what it did.

use qf_engine::{ExecContext, ExecStats};
use qf_storage::{Database, Relation};

use crate::compile::JoinOrderStrategy;
use crate::dynamic::{evaluate_dynamic_with, DynamicConfig};
use crate::error::Result;
use crate::eval::evaluate_direct_with;
use crate::exec::execute_plan_with;
use crate::filter::FilterAgg;
use crate::flock::QueryFlock;
use crate::plangen::best_plan_with;

/// Which evaluation machinery to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// One monolithic plan, no a-priori pruning.
    Direct,
    /// Enumerate legal static plans, cost them, run the cheapest.
    BestStatic,
    /// §4.4 dynamic filter selection (single-rule flocks only).
    Dynamic,
    /// Choose automatically: dynamic for single-rule flocks with a
    /// `COUNT` support filter (where its decisions are defined),
    /// cost-based static search otherwise.
    #[default]
    Auto,
}

/// Configuration for the [`Optimizer`].
#[derive(Clone, Debug, Default)]
pub struct OptimizerConfig {
    /// Strategy selection.
    pub strategy: Strategy,
    /// Join-order strategy for compiled plans.
    pub join_order: JoinOrderStrategy,
    /// Tuning for the dynamic evaluator.
    pub dynamic: DynamicConfig,
    /// Run directory for a crash-safe [`crate::journal::RunJournal`].
    /// When set, completed `FILTER` steps are durably recorded there
    /// and a re-run resumes from the last completed step (after
    /// validating the plan and catalog fingerprints).
    pub journal_dir: Option<std::path::PathBuf>,
    /// Filesystem backend for the journal (fault injection); `None`
    /// means the real filesystem.
    pub journal_vfs: Option<std::sync::Arc<dyn qf_storage::Vfs>>,
}

/// What the optimizer did and what it produced.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The flock result (parameter assignments).
    pub result: Relation,
    /// Human-readable description of the executed strategy.
    pub strategy_used: String,
    /// Estimated cost of the chosen static plan, when one was searched.
    pub estimated_cost: Option<f64>,
    /// Number of voluntary `FILTER` applications (static reductions or
    /// dynamic decisions).
    pub filters_applied: usize,
    /// Governor accounting: rows/bytes materialized and any graceful
    /// degradations (plan-search fallback, skipped dynamic filters).
    pub stats: ExecStats,
    /// Steps replayed from a run journal instead of re-evaluated
    /// (always 0 without [`OptimizerConfig::journal_dir`]).
    pub resumed_steps: usize,
}

/// The flock optimizer.
#[derive(Clone, Debug, Default)]
pub struct Optimizer {
    /// Configuration.
    pub config: OptimizerConfig,
}

impl Optimizer {
    /// Optimizer with default configuration ([`Strategy::Auto`]).
    pub fn new() -> Optimizer {
        Optimizer::default()
    }

    /// Optimizer with a fixed strategy.
    pub fn with_strategy(strategy: Strategy) -> Optimizer {
        Optimizer {
            config: OptimizerConfig {
                strategy,
                ..OptimizerConfig::default()
            },
        }
    }

    /// Evaluate `flock` against `db` under the configured strategy.
    pub fn evaluate(&self, flock: &QueryFlock, db: &Database) -> Result<Evaluation> {
        self.evaluate_with(flock, db, &ExecContext::unbounded())
    }

    /// [`Optimizer::evaluate`] under an execution governor: every
    /// strategy honours `ctx`'s budgets, deadline and cancellation
    /// token, and the returned [`Evaluation::stats`] carries the
    /// accounting (including graceful degradations).
    pub fn evaluate_with(
        &self,
        flock: &QueryFlock,
        db: &Database,
        ctx: &ExecContext,
    ) -> Result<Evaluation> {
        let strategy = match self.config.strategy {
            Strategy::Auto => {
                let dynamic_applicable = flock.query().is_single()
                    && matches!(flock.filter().agg, FilterAgg::Count)
                    && flock.filter().is_monotone();
                if dynamic_applicable {
                    Strategy::Dynamic
                } else if flock.filter().is_monotone() {
                    Strategy::BestStatic
                } else {
                    // Non-monotone filters admit no sound pruning.
                    Strategy::Direct
                }
            }
            s => s,
        };
        let evaluation = match strategy {
            Strategy::Direct => {
                let (result, resumed) = self.single_shot(flock, db, ctx, "direct", || {
                    evaluate_direct_with(flock, db, self.config.join_order, ctx)
                })?;
                Evaluation {
                    result,
                    strategy_used: if resumed > 0 {
                        "direct (resumed)".to_string()
                    } else {
                        "direct".to_string()
                    },
                    estimated_cost: None,
                    filters_applied: 0,
                    stats: ExecStats::default(),
                    resumed_steps: resumed,
                }
            }
            Strategy::BestStatic => {
                let (plan, cost) = best_plan_with(flock, db, ctx)?;
                let reductions = plan.len() - 1;
                let label = if reductions == 0 {
                    "best-static: direct".to_string()
                } else {
                    format!("best-static: {}", plan.reduction_names().join("+"))
                };
                let run = match &self.config.journal_dir {
                    Some(dir) => {
                        let mut journal = crate::journal::RunJournal::open_on(
                            self.journal_vfs(),
                            dir,
                            crate::journal::plan_fingerprint(&plan),
                            crate::journal::catalog_fingerprint(db),
                        )?;
                        crate::exec::execute_plan_journaled(
                            &plan,
                            db,
                            self.config.join_order,
                            ctx,
                            &mut journal,
                        )?
                    }
                    None => execute_plan_with(&plan, db, self.config.join_order, ctx)?,
                };
                let resumed = run.steps.iter().filter(|s| s.resumed).count();
                Evaluation {
                    result: run.result,
                    strategy_used: label,
                    estimated_cost: Some(cost),
                    filters_applied: reductions,
                    stats: ExecStats::default(),
                    resumed_steps: resumed,
                }
            }
            Strategy::Dynamic => {
                let mut voluntary = 0usize;
                let (result, resumed) = self.single_shot(flock, db, ctx, "dynamic", || {
                    let report = evaluate_dynamic_with(flock, db, &self.config.dynamic, ctx)?;
                    voluntary = report
                        .decisions
                        .iter()
                        .filter(|d| {
                            d.filtered && d.reason != crate::dynamic::DecisionReason::FinalMandatory
                        })
                        .count();
                    Ok(report.result)
                })?;
                Evaluation {
                    result,
                    strategy_used: if resumed > 0 {
                        "dynamic (resumed)".to_string()
                    } else {
                        format!("dynamic ({voluntary} voluntary filters)")
                    },
                    estimated_cost: None,
                    filters_applied: voluntary,
                    stats: ExecStats::default(),
                    resumed_steps: resumed,
                }
            }
            Strategy::Auto => unreachable!("resolved above"),
        };
        Ok(Evaluation {
            stats: ctx.stats(),
            ..evaluation
        })
    }

    /// Run a single-shot strategy (direct / dynamic) under the optional
    /// journal. These strategies have no intermediate `FILTER` steps,
    /// so the journal holds the final result as one step: a completed
    /// journal replays it without recomputation, and an interrupted run
    /// simply starts over (there is nothing partial to save).
    /// The filesystem backend journals should use (configured injector
    /// or the real filesystem).
    fn journal_vfs(&self) -> std::sync::Arc<dyn qf_storage::Vfs> {
        self.config
            .journal_vfs
            .clone()
            .unwrap_or_else(qf_storage::real_fs)
    }

    fn single_shot(
        &self,
        flock: &QueryFlock,
        db: &Database,
        ctx: &ExecContext,
        tag: &str,
        eval: impl FnOnce() -> Result<Relation>,
    ) -> Result<(Relation, usize)> {
        let Some(dir) = &self.config.journal_dir else {
            return Ok((eval()?, 0));
        };
        let plan_fp = crate::journal::fingerprint_text(&format!("{tag}\n{}", flock.render()));
        let mut journal = crate::journal::RunJournal::open_on(
            self.journal_vfs(),
            dir,
            plan_fp,
            crate::journal::catalog_fingerprint(db),
        )?;
        if journal.contiguous_prefix(1) == 1 {
            match journal.load_step(0) {
                Ok(rel) => return Ok((rel, 1)),
                Err(e @ crate::error::FlockError::SnapshotCorrupt { .. }) => {
                    // Same policy as the plan executor: a damaged
                    // snapshot costs the resume, never the run.
                    ctx.record_degradation("journal-corrupt-snapshot", format!("{e}; recomputing"));
                    ctx.note_corruption_recovery();
                }
                Err(e) => return Err(e),
            }
        }
        let result = eval()?;
        match journal.record_step(0, &result) {
            Ok(()) => {
                for _ in 0..journal.take_io_retries() {
                    ctx.note_io_retry();
                }
            }
            Err(e) => {
                for _ in 0..journal.take_io_retries() {
                    ctx.note_io_retry();
                }
                ctx.record_degradation(
                    "journal-advisory",
                    format!("{e}; continuing without journaling (resume disabled)"),
                );
            }
        }
        Ok((result, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_storage::{Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut rows = Vec::new();
        for b in 0..30i64 {
            rows.push(vec![Value::int(b), Value::str("hot1")]);
            rows.push(vec![Value::int(b), Value::str("hot2")]);
            rows.push(vec![Value::int(b), Value::str(&format!("noise{b}"))]);
        }
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows,
        ));
        db
    }

    fn flock() -> QueryFlock {
        QueryFlock::with_support(
            "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
            20,
        )
        .unwrap()
    }

    #[test]
    fn all_strategies_agree() {
        let db = db();
        let flock = flock();
        let reference = Optimizer::with_strategy(Strategy::Direct)
            .evaluate(&flock, &db)
            .unwrap();
        for s in [Strategy::BestStatic, Strategy::Dynamic, Strategy::Auto] {
            let e = Optimizer::with_strategy(s).evaluate(&flock, &db).unwrap();
            assert_eq!(e.result.tuples(), reference.result.tuples(), "{s:?}");
        }
        assert_eq!(reference.result.len(), 1);
    }

    #[test]
    fn auto_picks_dynamic_for_single_rule_count() {
        let e = Optimizer::new().evaluate(&flock(), &db()).unwrap();
        assert!(
            e.strategy_used.starts_with("dynamic"),
            "{}",
            e.strategy_used
        );
    }

    #[test]
    fn auto_picks_static_for_unions() {
        let mut db = db();
        db.insert(Relation::from_rows(
            Schema::new("carts", &["bid", "item"]),
            vec![vec![Value::int(1), Value::str("hot1")]],
        ));
        let flock = QueryFlock::parse(
            "QUERY:
             answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
             answer(B) :- carts(B,$1) AND carts(B,$2) AND $1 < $2
             FILTER: COUNT(answer(*)) >= 20",
        )
        .unwrap();
        let e = Optimizer::new().evaluate(&flock, &db).unwrap();
        assert!(
            e.strategy_used.starts_with("best-static"),
            "{}",
            e.strategy_used
        );
        assert!(e.estimated_cost.is_some());
    }

    #[test]
    fn auto_refuses_pruning_for_non_monotone() {
        let flock = QueryFlock::parse(
            "QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
             FILTER: COUNT(answer.B) < 5",
        )
        .unwrap();
        let e = Optimizer::new().evaluate(&flock, &db()).unwrap();
        assert_eq!(e.strategy_used, "direct");
        assert_eq!(e.filters_applied, 0);
    }

    #[test]
    fn best_static_reports_cost_and_filters() {
        let e = Optimizer::with_strategy(Strategy::BestStatic)
            .evaluate(&flock(), &db())
            .unwrap();
        assert!(e.estimated_cost.unwrap() > 0.0);
    }
}
