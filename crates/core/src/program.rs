//! Flock programs: intermediate predicates (views) + a flock.
//!
//! Ex. 2.2's side-effects flock assumes each patient has one disease;
//! for several diseases "we would have to extend our query-flocks
//! language to allow intermediate predicates (in particular, a
//! predicate relating patients to the set of symptoms from all their
//! diseases). That extension is feasible but we shall concentrate on
//! the simpler cases." This module is that extension:
//!
//! A [`FlockProgram`] is a set of **view rules** — non-recursive,
//! parameter-free Datalog rules defining intermediate predicates — plus
//! a query flock over base relations *and* views. Evaluation
//! materializes the views in dependency order, then evaluates the flock
//! on the extended database, so every optimizer in this crate (static
//! plans, dynamic filtering, the cost model) applies unchanged.
//!
//! Concretely, the multi-disease side-effects flock becomes:
//!
//! ```text
//! explained(P,S) :- diagnoses(P,D) AND causes(D,S)
//! QUERY:
//! answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT explained(P,$s)
//! FILTER:
//! COUNT(answer.P) >= 20
//! ```

use std::collections::BTreeSet;

use qf_datalog::{check_safety, ConjunctiveQuery, UnionQuery};
use qf_storage::{Database, Relation, Schema, Symbol};

use crate::compile::{compile_rule, JoinOrderStrategy};
use crate::error::{FlockError, Result};
use crate::filter::FilterCondition;
use crate::flock::QueryFlock;

/// A flock plus the intermediate predicates it reads.
#[derive(Clone, Debug, PartialEq)]
pub struct FlockProgram {
    views: Vec<ConjunctiveQuery>,
    flock: QueryFlock,
}

impl FlockProgram {
    /// Build a program, checking each view rule is safe, parameter-free,
    /// and that the view dependency graph is acyclic (views may read
    /// earlier views, base relations, never themselves transitively).
    pub fn new(views: Vec<ConjunctiveQuery>, flock: QueryFlock) -> Result<FlockProgram> {
        for v in &views {
            v.validate()?;
            check_safety(v).map_err(|e| FlockError::UnsafeQuery {
                violation: format!("view `{v}`: {e}"),
            })?;
            if !v.params().is_empty() {
                return Err(FlockError::IllegalPlan {
                    detail: format!("view `{v}` mentions parameters; views must be parameter-free"),
                });
            }
        }
        let program = FlockProgram { views, flock };
        program.evaluation_order()?; // rejects recursion.
        Ok(program)
    }

    /// Parse the paper notation preceded by view rules: every rule
    /// before `QUERY:` whose head predicate is not `answer` is a view.
    ///
    /// ```text
    /// explained(P,S) :- diagnoses(P,D) AND causes(D,S)
    /// QUERY: answer(P) :- … AND NOT explained(P,$s)
    /// FILTER: COUNT(answer.P) >= 20
    /// ```
    pub fn parse(input: &str) -> Result<FlockProgram> {
        let upper = input.to_ascii_uppercase();
        let q_at = upper
            .find("QUERY:")
            .ok_or_else(|| FlockError::FilterParse {
                input: input.chars().take(40).collect(),
                detail: "missing `QUERY:` section".to_string(),
            })?;
        let views_text = &input[..q_at];
        let views = if views_text.trim().is_empty() {
            Vec::new()
        } else {
            parse_view_rules(views_text)?
        };
        let flock = QueryFlock::parse(&input[q_at..])?;
        FlockProgram::new(views, flock)
    }

    /// The view rules.
    pub fn views(&self) -> &[ConjunctiveQuery] {
        &self.views
    }

    /// The flock.
    pub fn flock(&self) -> &QueryFlock {
        &self.flock
    }

    /// Canonical rendering of the whole program: canonical view rules
    /// (sorted by text) above the flock's canonical text. Two programs
    /// that differ only in variable names, subgoal order, or rule order
    /// render identically — the program half of the server's
    /// result-cache key.
    pub fn canonical_text(&self) -> String {
        let mut views: Vec<String> = self
            .views
            .iter()
            .map(|v| qf_datalog::canonical_rule(v).to_string())
            .collect();
        views.sort();
        let mut text = String::new();
        for v in &views {
            text.push_str(v);
            text.push('\n');
        }
        text.push_str(&self.flock.canonical_text());
        text
    }

    /// Canonical query-only rendering (views + canonical query, filter
    /// excluded) — what the server's monotone result cache keys on, so
    /// one entry serves every subsumed support threshold.
    pub fn canonical_query_text(&self) -> String {
        let mut views: Vec<String> = self
            .views
            .iter()
            .map(|v| qf_datalog::canonical_rule(v).to_string())
            .collect();
        views.sort();
        let mut text = String::new();
        for v in &views {
            text.push_str(v);
            text.push('\n');
        }
        text.push_str(&self.flock.canonical_query_text());
        text
    }

    /// Syntax-insensitive fingerprint of the program (hash of
    /// [`FlockProgram::canonical_text`]).
    pub fn fingerprint(&self) -> u64 {
        crate::journal::fingerprint_text(&self.canonical_text())
    }

    /// Materialize every view into a copy of `db`, in dependency order.
    pub fn materialize_views(
        &self,
        db: &Database,
        strategy: JoinOrderStrategy,
    ) -> Result<Database> {
        self.materialize_views_with(db, strategy, &qf_engine::ExecContext::unbounded())
    }

    /// [`FlockProgram::materialize_views`] under an execution governor:
    /// view evaluation charges `ctx` like any other plan execution, so
    /// a runaway view blows the budget instead of memory.
    pub fn materialize_views_with(
        &self,
        db: &Database,
        strategy: JoinOrderStrategy,
        ctx: &qf_engine::ExecContext,
    ) -> Result<Database> {
        // A view named like a base relation would silently shadow it
        // (and self-referencing rules would then read their own partial
        // output): refuse.
        for v in &self.views {
            if db.contains(v.head.pred.as_str()) {
                return Err(FlockError::IllegalPlan {
                    detail: format!("view head `{}` collides with a base relation", v.head.pred),
                });
            }
        }
        let mut working = db.clone();
        for &vi in &self.evaluation_order()? {
            // Group all rules for this head predicate evaluated together
            // (the order walks head predicates, not individual rules).
            let head = self.views[vi].head.pred;
            if working.contains(head.as_str()) && !db.contains(head.as_str()) {
                continue; // already materialized via an earlier rule group.
            }
            let rules: Vec<&ConjunctiveQuery> =
                self.views.iter().filter(|v| v.head.pred == head).collect();
            let mut tuples = Vec::new();
            let mut arity = 0;
            for rule in &rules {
                let compiled = compile_rule(rule, &working, strategy)?;
                let rel = qf_engine::execute_with(&compiled.plan, &working, ctx)?;
                arity = rule.head.arity();
                tuples.extend(rel.iter().cloned());
            }
            let columns: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
            working.insert(Relation::from_tuples(
                Schema::from_columns(head.to_string(), columns),
                tuples,
            ));
        }
        Ok(working)
    }

    /// Evaluate the program: materialize views, then the flock, via the
    /// [`crate::Optimizer`] with default (auto) strategy.
    pub fn evaluate(&self, db: &Database) -> Result<crate::optimizer::Evaluation> {
        self.evaluate_with(db, &crate::optimizer::Optimizer::new())
    }

    /// Evaluate under a specific optimizer configuration.
    pub fn evaluate_with(
        &self,
        db: &Database,
        optimizer: &crate::optimizer::Optimizer,
    ) -> Result<crate::optimizer::Evaluation> {
        self.evaluate_governed(db, optimizer, &qf_engine::ExecContext::unbounded())
    }

    /// Evaluate under an optimizer configuration *and* an execution
    /// governor: view materialization and flock evaluation share the
    /// same budgets, deadline and cancellation token.
    pub fn evaluate_governed(
        &self,
        db: &Database,
        optimizer: &crate::optimizer::Optimizer,
        ctx: &qf_engine::ExecContext,
    ) -> Result<crate::optimizer::Evaluation> {
        let extended = self.materialize_views_with(db, optimizer.config.join_order, ctx)?;
        optimizer.evaluate_with(&self.flock, &extended, ctx)
    }

    /// Topologically order view indexes; error on recursion. Views with
    /// the same head predicate sort together (first index wins).
    fn evaluation_order(&self) -> Result<Vec<usize>> {
        let heads: BTreeSet<Symbol> = self.views.iter().map(|v| v.head.pred).collect();
        // Kahn's algorithm over head predicates.
        let depends = |v: &ConjunctiveQuery| -> BTreeSet<Symbol> {
            v.predicates().intersection(&heads).copied().collect()
        };
        let mut order = Vec::new();
        let mut done: BTreeSet<Symbol> = BTreeSet::new();
        let mut remaining: Vec<usize> = (0..self.views.len()).collect();
        while !remaining.is_empty() {
            let ready: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| {
                    // All rules of this head must be ready together.
                    let head = self.views[i].head.pred;
                    self.views
                        .iter()
                        .filter(|v| v.head.pred == head)
                        .all(|v| depends(v).iter().all(|d| done.contains(d) || *d == head))
                })
                .collect();
            // Self-dependency (recursion) is not allowed even though the
            // filter above tolerates `*d == head` for grouping: reject it.
            for &i in &ready {
                if depends(&self.views[i]).contains(&self.views[i].head.pred) {
                    return Err(FlockError::IllegalPlan {
                        detail: format!(
                            "view `{}` is recursive; flock views must be non-recursive",
                            self.views[i]
                        ),
                    });
                }
            }
            if ready.is_empty() {
                return Err(FlockError::IllegalPlan {
                    detail: "view rules are mutually recursive".to_string(),
                });
            }
            for i in ready {
                done.insert(self.views[i].head.pred);
                order.push(i);
                remaining.retain(|&j| j != i);
            }
        }
        Ok(order)
    }
}

/// Parse view rules: a sequence of rules with arbitrary head predicates
/// (unlike `parse_query`, which validates a shared `answer` head).
fn parse_view_rules(text: &str) -> Result<Vec<ConjunctiveQuery>> {
    // Reuse the rule parser by splitting on head predicates: the datalog
    // parser exposes single-rule parsing; walk the text rule by rule by
    // parsing greedily. Simplest robust approach: parse the whole text
    // as a union with relaxed validation by wrapping each rule; the
    // datalog crate's `parse_query` insists on equal heads, so split on
    // lines that contain `:-` starts.
    let mut rules = Vec::new();
    let mut current = String::new();
    for line in text.lines() {
        let starts_rule = line.contains(":-");
        if starts_rule && !current.trim().is_empty() {
            rules.push(qf_datalog::parse_rule(current.trim())?);
            current.clear();
        }
        current.push_str(line);
        current.push('\n');
    }
    if !current.trim().is_empty() {
        rules.push(qf_datalog::parse_rule(current.trim())?);
    }
    Ok(rules)
}

/// Convenience: build the multi-disease side-effects program of the
/// module docs (used by examples and tests).
pub fn multi_disease_side_effects(threshold: i64) -> Result<FlockProgram> {
    let views = vec![qf_datalog::parse_rule(
        "explained(P,S) :- diagnoses(P,D) AND causes(D,S)",
    )?];
    let flock = QueryFlock::new(
        UnionQuery::new(vec![qf_datalog::parse_rule(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT explained(P,$s)",
        )?])?,
        FilterCondition::support(threshold),
    )?;
    FlockProgram::new(views, flock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_storage::Value;

    /// Patients with SEVERAL diseases — the exact case Ex. 2.2 says the
    /// base language cannot express.
    fn multi_disease_db() -> Database {
        let mut db = Database::new();
        let mut diagnoses = Vec::new();
        let mut exhibits = Vec::new();
        let mut treatments = Vec::new();
        // 25 patients each have BOTH flu and pox, take zorix, and show
        // fever. Flu does not cause fever, pox does → the symptom IS
        // explained, but only a multi-disease join can see it.
        for p in 0..25i64 {
            diagnoses.push(vec![Value::int(p), Value::str("flu")]);
            diagnoses.push(vec![Value::int(p), Value::str("pox")]);
            exhibits.push(vec![Value::int(p), Value::str("fever")]);
            treatments.push(vec![Value::int(p), Value::str("zorix")]);
        }
        // 25 more patients have only flu, take zorix, show "ache" which
        // nothing causes → a true unexplained side-effect.
        for p in 25..50i64 {
            diagnoses.push(vec![Value::int(p), Value::str("flu")]);
            exhibits.push(vec![Value::int(p), Value::str("ache")]);
            treatments.push(vec![Value::int(p), Value::str("zorix")]);
        }
        db.insert(Relation::from_rows(
            Schema::new("diagnoses", &["p", "d"]),
            diagnoses,
        ));
        db.insert(Relation::from_rows(
            Schema::new("exhibits", &["p", "s"]),
            exhibits,
        ));
        db.insert(Relation::from_rows(
            Schema::new("treatments", &["p", "m"]),
            treatments,
        ));
        db.insert(Relation::from_rows(
            Schema::new("causes", &["d", "s"]),
            vec![vec![Value::str("pox"), Value::str("fever")]],
        ));
        db
    }

    #[test]
    fn multi_disease_case_handled_by_view() {
        let program = multi_disease_side_effects(20).unwrap();
        let db = multi_disease_db();
        let evaluation = program.evaluate(&db).unwrap();
        // Only (zorix, ache) is unexplained; (zorix, fever) is explained
        // by the patients' SECOND disease, which the single-disease
        // flock of Fig. 3 would wrongly report.
        assert_eq!(evaluation.result.len(), 1);
        let t = &evaluation.result.tuples()[0];
        assert_eq!(t.get(0), Value::str("zorix"));
        assert_eq!(t.get(1), Value::str("ache"));

        // Demonstrate the paper's point: the viewless Fig. 3 flock on
        // the same data produces the false positive.
        let fig3 = QueryFlock::with_support(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
            20,
        )
        .unwrap();
        let wrong = crate::eval::evaluate_direct(&fig3, &db, JoinOrderStrategy::Greedy).unwrap();
        assert!(
            wrong.iter().any(|t| t.get(1) == Value::str("fever")),
            "the single-disease flock should report the false positive"
        );
    }

    #[test]
    fn parse_program_notation() {
        let program = FlockProgram::parse(
            "explained(P,S) :- diagnoses(P,D) AND causes(D,S)
             QUERY:
             answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT explained(P,$s)
             FILTER:
             COUNT(answer.P) >= 20",
        )
        .unwrap();
        assert_eq!(program.views().len(), 1);
        assert_eq!(program.flock().params().len(), 2);
        // Equivalent to the builder.
        assert_eq!(program, multi_disease_side_effects(20).unwrap());
    }

    #[test]
    fn views_may_chain() {
        let program = FlockProgram::parse(
            "hop(X,Z) :- arc(X,Y) AND arc(Y,Z)
             twohop(X,W) :- hop(X,Z) AND hop(Z,W)
             QUERY: answer(X) :- twohop($1,X)
             FILTER: COUNT(answer.X) >= 2",
        )
        .unwrap();
        let mut db = Database::new();
        // 0→1→2→3→4 plus 0→5→6→7→8: node 0 has two 4-hop targets.
        let mut rows = Vec::new();
        for (s, t) in [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (0, 5),
            (5, 6),
            (6, 7),
            (7, 8),
        ] {
            rows.push(vec![Value::int(s), Value::int(t)]);
        }
        db.insert(Relation::from_rows(Schema::new("arc", &["s", "t"]), rows));
        let evaluation = program.evaluate(&db).unwrap();
        assert_eq!(evaluation.result.len(), 1);
        assert_eq!(evaluation.result.tuples()[0].get(0), Value::int(0));
    }

    #[test]
    fn recursive_views_rejected() {
        let err = FlockProgram::parse(
            "reach(X,Y) :- arc(X,Y)
             reach(X,Z) :- reach(X,Y) AND arc(Y,Z)
             QUERY: answer(X) :- reach($1,X)
             FILTER: COUNT(answer.X) >= 2",
        )
        .unwrap_err();
        assert!(matches!(err, FlockError::IllegalPlan { .. }), "{err}");
    }

    #[test]
    fn parameterized_views_rejected() {
        let err = FlockProgram::parse(
            "v(P) :- exhibits(P,$s)
             QUERY: answer(P) :- v(P) AND treatments(P,$m)
             FILTER: COUNT(answer.P) >= 2",
        )
        .unwrap_err();
        assert!(matches!(err, FlockError::IllegalPlan { .. }));
    }

    #[test]
    fn union_views_merge_rules() {
        let program = FlockProgram::parse(
            "connected(X,Y) :- arc(X,Y)
             connected(X,Y) :- arc(Y,X)
             QUERY: answer(X) :- connected($1,X)
             FILTER: COUNT(answer.X) >= 2",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("arc", &["s", "t"]),
            vec![
                vec![Value::int(0), Value::int(1)],
                vec![Value::int(2), Value::int(0)],
            ],
        ));
        let extended = program
            .materialize_views(&db, JoinOrderStrategy::Greedy)
            .unwrap();
        // connected = {(0,1),(1,0),(2,0),(0,2)}.
        assert_eq!(extended.get("connected").unwrap().len(), 4);
        let evaluation = program.evaluate(&db).unwrap();
        assert_eq!(evaluation.result.len(), 1); // $1 = 0 reaches 1 and 2.
    }

    #[test]
    fn view_shadowing_base_relation_rejected() {
        let program = FlockProgram::parse(
            "exhibits(P,S) :- diagnoses(P,S)
             QUERY: answer(P) :- exhibits(P,$s)
             FILTER: COUNT(answer.P) >= 1",
        )
        .unwrap();
        let db = multi_disease_db();
        let err = program.evaluate(&db).unwrap_err();
        assert!(matches!(err, FlockError::IllegalPlan { .. }), "{err}");
    }

    #[test]
    fn program_canonical_text_covers_views() {
        let a = FlockProgram::parse(
            "explained(P,S) :- diagnoses(P,D) AND causes(D,S)
             QUERY: answer(P) :- exhibits(P,$s) AND NOT explained(P,$s)
             FILTER: COUNT(answer.P) >= 20",
        )
        .unwrap();
        // Renamed view variables and reordered view body.
        let b = FlockProgram::parse(
            "explained(Q,T) :- causes(E,T) AND diagnoses(Q,E)
             QUERY: answer(X) :- exhibits(X,$s) AND NOT explained(X,$s)
             FILTER: COUNT(answer(*)) >= 20",
        )
        .unwrap();
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A different view definition changes the fingerprint even when
        // the flock is identical.
        let c = FlockProgram::parse(
            "explained(P,S) :- diagnoses(P,S)
             QUERY: answer(P) :- exhibits(P,$s) AND NOT explained(P,$s)
             FILTER: COUNT(answer.P) >= 20",
        )
        .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Query-only text ignores the threshold.
        let d = FlockProgram::parse(
            "explained(P,S) :- diagnoses(P,D) AND causes(D,S)
             QUERY: answer(P) :- exhibits(P,$s) AND NOT explained(P,$s)
             FILTER: COUNT(answer.P) >= 99",
        )
        .unwrap();
        assert_eq!(a.canonical_query_text(), d.canonical_query_text());
    }

    #[test]
    fn program_without_views_is_a_flock() {
        let program = FlockProgram::parse(
            "QUERY: answer(B) :- baskets(B,$1) AND baskets(B,$2)
             FILTER: COUNT(answer.B) >= 1",
        )
        .unwrap();
        assert!(program.views().is_empty());
    }
}
