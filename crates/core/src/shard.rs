//! Sharded (scatter-gather) flock execution: the core algebra.
//!
//! The paper's central filters are algebraic — `COUNT`/`SUM` partials
//! merge by addition, `MIN`/`MAX` by min/max — so a flock can run over
//! a hash-partitioned catalog: each shard evaluates every `FILTER`
//! step at a *vacuous* threshold (nothing pruned locally), the
//! coordinator merges the scored partials exactly, and only the final
//! threshold test needs the global view. This module holds everything
//! both tiers share:
//!
//! * **stable partition hashing** ([`stable_value_hash`], [`shard_of`],
//!   [`partition_relation`], [`partition_database`]) — content-based
//!   (integers by value, symbols by *string*), so two processes with
//!   different interner states agree on every tuple's home shard;
//! * **vacuous filters** ([`vacuous_filter`]) — the per-shard filter
//!   that keeps every group while still [subsuming] every real
//!   threshold of the same direction, which makes shard-side cache
//!   entries maximally reusable;
//! * **the shardability check** ([`shard_key_pos`]) — the syntactic
//!   condition under which per-shard answer tuples are *disjoint*, the
//!   precondition for `COUNT`/`SUM` addition to be exact;
//! * **the merge wrapper** ([`merge_scored_partials`]) — maps the
//!   flock's aggregate onto the engine's [`MergeOp`] kernel.
//!
//! [subsuming]: crate::FilterCondition::subsumes
//! [`MergeOp`]: qf_engine::MergeOp

use std::collections::BTreeSet;

use qf_datalog::{Literal, Term};
use qf_engine::{ExecContext, MergeOp};
use qf_storage::{CmpOp, Database, Fnv1a, Relation, Schema, Tuple, Value};

use crate::compile::JoinOrderStrategy;
use crate::error::Result;
use crate::exec::execute_plan_scored_with;
use crate::filter::{FilterAgg, FilterCondition};
use crate::flock::QueryFlock;
use crate::plan::FilterStep;
use crate::plangen::direct_plan;
use crate::program::FlockProgram;

/// Content-based hash of a single value: integers by value, symbols by
/// their string. Two processes that interned symbols in different
/// orders still agree, which is what makes the partition map stable
/// across the coordinator and every worker.
pub fn stable_value_hash(v: Value) -> u64 {
    let mut h = Fnv1a::new();
    h.write_value(v);
    h.finish()
}

/// The home shard of a partition-key value among `shards` shards.
pub fn shard_of(v: Value, shards: usize) -> usize {
    (stable_value_hash(v) % shards.max(1) as u64) as usize
}

/// Hash-partition a relation by its **first column** into `shards`
/// fragments. Fragments keep the relation's schema and name; every
/// tuple lands in exactly one fragment, so the fragments partition the
/// relation.
pub fn partition_relation(rel: &Relation, shards: usize) -> Vec<Relation> {
    let n = shards.max(1);
    let mut buckets: Vec<Vec<Tuple>> = (0..n).map(|_| Vec::new()).collect();
    for t in rel.iter() {
        buckets[shard_of(t.get(0), n)].push(t.clone());
    }
    buckets
        .into_iter()
        // A subsequence of a sorted, deduplicated relation is itself
        // sorted and duplicate-free.
        .map(|ts| Relation::from_sorted_dedup(rel.schema().clone(), ts))
        .collect()
}

/// Partition a whole catalog: relations named in `replicated` are
/// cloned onto every shard, the rest are hash-partitioned by first
/// column. Fragment `k` is shard `k`'s entire catalog.
pub fn partition_database(
    db: &Database,
    shards: usize,
    replicated: &BTreeSet<String>,
) -> Vec<Database> {
    let n = shards.max(1);
    let mut frags: Vec<Database> = (0..n).map(|_| Database::new()).collect();
    for rel in db.iter() {
        if replicated.contains(rel.name()) {
            for frag in &mut frags {
                frag.insert(rel.clone());
            }
        } else {
            for (frag, part) in frags.iter_mut().zip(partition_relation(rel, n)) {
                frag.insert(part);
            }
        }
    }
    frags
}

/// The workers hosting copies of fragment `frag` under `replicas`-way
/// replication: fragment *i* lands on workers *i*, *i+1 mod n*, … up to
/// `replicas` distinct workers. The first entry is the fragment's
/// *primary*; the rest are failover/hedge targets holding bitwise-
/// identical copies. `replicas` is clamped to `[1, shards]`.
pub fn replica_workers(frag: usize, shards: usize, replicas: usize) -> Vec<usize> {
    let n = shards.max(1);
    let r = replicas.clamp(1, n);
    (0..r).map(|k| (frag + k) % n).collect()
}

/// The inverse map: every fragment hosted on worker `worker`. Worker
/// *w* holds fragment *i* exactly when *w ∈ replica_workers(i)*, i.e.
/// fragments *w*, *w-1 mod n*, … back through `replicas` slots. Sorted
/// ascending so re-sync ships fragments in a stable order.
pub fn worker_fragments(worker: usize, shards: usize, replicas: usize) -> Vec<usize> {
    let n = shards.max(1);
    let r = replicas.clamp(1, n);
    let mut frags: Vec<usize> = (0..r).map(|k| (worker + n - k) % n).collect();
    frags.sort_unstable();
    frags
}

/// The vacuous (keep-everything) version of a filter: same aggregate,
/// threshold pushed to the extreme of the filter's direction. `≤`-family
/// filters become `≤ i64::MAX`; everything else becomes `≥ i64::MIN`
/// (`=`/`≠` have no one-sided vacuous form, so shards compute the exact
/// aggregate under `≥ i64::MIN` and the coordinator applies the real
/// test after the merge). A vacuous filter
/// [subsumes](FilterCondition::subsumes) every same-direction filter
/// over the same aggregate, so a cached vacuous run answers *all*
/// future thresholds.
pub fn vacuous_filter(filter: &FilterCondition) -> FilterCondition {
    match filter.op {
        CmpOp::Le | CmpOp::Lt => FilterCondition {
            agg: filter.agg,
            op: CmpOp::Le,
            threshold: i64::MAX,
        },
        _ => FilterCondition {
            agg: filter.agg,
            op: CmpOp::Ge,
            threshold: i64::MIN,
        },
    }
}

/// True if `filter` is one of the two forms [`vacuous_filter`] emits.
pub fn is_vacuous(filter: &FilterCondition) -> bool {
    matches!(
        (filter.op, filter.threshold),
        (CmpOp::Ge, i64::MIN) | (CmpOp::Le, i64::MAX)
    )
}

/// How partials of this aggregate combine: `COUNT`/`SUM` add, `MIN`/
/// `MAX` take the extremum.
pub fn merge_op(agg: &FilterAgg) -> MergeOp {
    match agg {
        FilterAgg::Count | FilterAgg::Sum(_) => MergeOp::Add,
        FilterAgg::Min(_) => MergeOp::Min,
        FilterAgg::Max(_) => MergeOp::Max,
    }
}

/// Merge per-shard scored partials `(params…, agg)` into the global
/// scored relation, using the merge algebra of `agg`. Exact whenever
/// the shards' answer tuples are disjoint — the invariant
/// [`shard_key_pos`] certifies.
pub fn merge_scored_partials(
    agg: &FilterAgg,
    schema: Schema,
    parts: &[Relation],
) -> Result<Relation> {
    Ok(qf_engine::merge_partials(schema, parts, merge_op(agg))?)
}

/// The shardability check: find a head position `h` such that
/// hash-partitioning every non-replicated relation by first column
/// makes the per-shard **answer tuples disjoint** (each answer tuple is
/// produced only on the home shard of its position-`h` value). That is
/// the precondition for `COUNT`/`SUM` partials to add exactly.
///
/// Position `h` qualifies when, in *every* rule:
///
/// * the head's argument `h` is a variable `v` (the partition
///   variable);
/// * every positive subgoal is either **keyed** — over a partitioned
///   relation with `v` as its first argument, so all of an answer
///   tuple's witnesses live on `v`'s home shard — or over a replicated
///   relation that does **not mention `v` at all**. The stronger
///   no-mention condition matters for plans, not just whole flocks: a
///   reduction step evaluates a *subset* of a rule's subgoals, and if
///   a replicated subgoal could bind `v` on its own, a step made only
///   of replicated subgoals would be safe yet produce every group on
///   every shard — `COUNT` partials would then add `n` copies. With
///   the condition, any safe (sub)query binding `v` must include a
///   keyed subgoal, which zeroes the group on every shard but its
///   home;
/// * at least one positive subgoal is keyed (implied by rule safety
///   under the previous condition, but checked explicitly);
/// * every negated subgoal is over a replicated relation — negation
///   against a fragment would *under*-reject.
///
/// Returns the first qualifying position, or `None` (the caller falls
/// back to single-node evaluation).
pub fn shard_key_pos(flock: &QueryFlock, replicated: &BTreeSet<String>) -> Option<usize> {
    let rules = flock.query().rules();
    'pos: for h in 0..flock.query().head_arity() {
        for rule in rules {
            let Some(Term::Var(v)) = rule.head.args.get(h) else {
                continue 'pos;
            };
            let mut keyed_subgoal = false;
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => {
                        if replicated.contains(a.pred.as_str()) {
                            if a.args.contains(&Term::Var(*v)) {
                                continue 'pos;
                            }
                            continue;
                        }
                        if a.args.first() != Some(&Term::Var(*v)) {
                            continue 'pos;
                        }
                        keyed_subgoal = true;
                    }
                    Literal::Neg(a) => {
                        if !replicated.contains(a.pred.as_str()) {
                            continue 'pos;
                        }
                    }
                    Literal::Cmp(_) => {}
                }
            }
            if !keyed_subgoal {
                continue 'pos;
            }
        }
        return Some(h);
    }
    None
}

/// [`shard_key_pos`] lifted to whole programs. Views materialize
/// *before* partitioning is visible, so any program with views falls
/// back to single-node evaluation.
pub fn shardable_program(program: &FlockProgram, replicated: &BTreeSet<String>) -> Option<usize> {
    if !program.views().is_empty() {
        return None;
    }
    shard_key_pos(program.flock(), replicated)
}

/// Wrap one `FILTER` step as a standalone mini-flock at the vacuous
/// threshold of `filter` (the plan's real filter). Step rule heads are
/// the flock's own heads (§4.1 plans never rename them), so the step's
/// query *is* a legal flock query and the mini-flock round-trips
/// through the `QUERY:`/`FILTER:` notation — a partial request is just
/// an ordinary program the worker already knows how to parse.
pub fn partial_flock(step: &FilterStep, filter: &FilterCondition) -> Result<QueryFlock> {
    QueryFlock::new(step.query.clone(), vacuous_filter(filter))
}

/// The scored schema a partial evaluation of `step` produces:
/// the step's parameters plus the trailing `agg` column.
pub fn scored_schema(step: &FilterStep) -> Schema {
    let mut columns: Vec<String> = step.params.iter().map(|p| p.to_string()).collect();
    columns.push("agg".to_string());
    Schema::from_columns("scored_result", columns)
}

/// Evaluate a mini-flock to its scored relation on a local catalog —
/// the worker side of a scatter, also used by the coordinator to
/// re-evaluate a dead shard's fragment. Always the direct plan: a step
/// is already one step of a searched plan, so searching again would
/// only burn the budget the governor metered out.
pub fn evaluate_scored_partial(
    flock: &QueryFlock,
    db: &Database,
    strategy: JoinOrderStrategy,
    ctx: &ExecContext,
) -> Result<Relation> {
    let plan = direct_plan(flock)?;
    let run = execute_plan_scored_with(&plan, db, strategy, ctx)?;
    Ok(run.scored)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basket_db(rows: Vec<Vec<Value>>) -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_rows(
            Schema::new("baskets", &["bid", "item"]),
            rows,
        ));
        db
    }

    #[test]
    fn partition_is_stable_and_total() {
        let rel = Relation::from_rows(
            Schema::new("r", &["k", "v"]),
            (0..100)
                .map(|i| vec![Value::int(i), Value::int(i * 7)])
                .collect(),
        );
        let parts = partition_relation(&rel, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Relation::len).sum();
        assert_eq!(total, rel.len());
        for part in &parts {
            for t in part.iter() {
                assert!(rel.contains(t));
                // Re-hashing sends the tuple back to the same fragment.
                assert!(parts[shard_of(t.get(0), 4)].contains(t));
            }
        }
    }

    #[test]
    fn replica_placement_round_trips_and_clamps() {
        // fragment i → workers i, i+1 mod n, … for R distinct workers.
        assert_eq!(replica_workers(0, 3, 2), vec![0, 1]);
        assert_eq!(replica_workers(2, 3, 2), vec![2, 0]);
        // R clamps to [1, n]: R=0 behaves like 1, R>n like n.
        assert_eq!(replica_workers(1, 3, 0), vec![1]);
        assert_eq!(replica_workers(1, 3, 9), vec![1, 2, 0]);
        // The two maps are inverses: w hosts f  ⇔  f scatters to w.
        for n in 1..=5 {
            for r in 1..=n {
                for f in 0..n {
                    for w in 0..n {
                        let hosts = replica_workers(f, n, r);
                        let held = worker_fragments(w, n, r);
                        assert_eq!(
                            hosts.contains(&w),
                            held.contains(&f),
                            "n={n} r={r} f={f} w={w}"
                        );
                    }
                    // Exactly R distinct hosts, primary first.
                    let hosts = replica_workers(f, n, r);
                    assert_eq!(hosts.len(), r);
                    assert_eq!(hosts[0], f);
                    let dedup: BTreeSet<usize> = hosts.iter().copied().collect();
                    assert_eq!(dedup.len(), r);
                }
            }
        }
    }

    #[test]
    fn symbol_hash_is_content_based() {
        // Same string, same hash — regardless of interner history.
        assert_eq!(
            stable_value_hash(Value::str("beer")),
            stable_value_hash(Value::str("beer"))
        );
        assert_ne!(
            stable_value_hash(Value::str("beer")),
            stable_value_hash(Value::str("diapers"))
        );
    }

    #[test]
    fn vacuous_filters_subsume_their_direction() {
        for text in [
            "COUNT(answer.B) >= 20",
            "COUNT(answer.B) > 3",
            "SUM(answer.W) >= 5",
            "MAX(answer.W) > 0",
            "COUNT(answer.B) = 2",
            "COUNT(answer.B) != 2",
        ] {
            let f = FilterCondition::parse(text).unwrap();
            let v = vacuous_filter(&f);
            assert!(is_vacuous(&v), "{text}");
            if matches!(f.op, CmpOp::Ge | CmpOp::Gt | CmpOp::Le | CmpOp::Lt) {
                assert!(v.subsumes(&f), "vacuous must subsume {text}");
            }
        }
        let min = FilterCondition::parse("MIN(answer.W) <= 9").unwrap();
        let v = vacuous_filter(&min);
        assert_eq!((v.op, v.threshold), (CmpOp::Le, i64::MAX));
        assert!(v.subsumes(&min));
    }

    #[test]
    fn vacuous_filter_renders_and_reparses() {
        let f = FilterCondition::parse("COUNT(answer.B) >= 20").unwrap();
        let v = vacuous_filter(&f);
        let text = v.render("answer");
        assert_eq!(FilterCondition::parse(&text).unwrap(), v);
    }

    #[test]
    fn shard_key_found_for_market_basket_flock() {
        let flock = QueryFlock::parse(
            "QUERY:  answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
             FILTER: COUNT(answer.B) >= 2",
        )
        .unwrap();
        // Every positive subgoal is keyed on B at position 0.
        assert_eq!(shard_key_pos(&flock, &BTreeSet::new()), Some(0));
    }

    #[test]
    fn shard_key_respects_replication_and_negation() {
        let replicated: BTreeSet<String> = ["dict".to_string()].into_iter().collect();
        // `dict` is not keyed on B, but it is replicated — fine.
        let flock = QueryFlock::parse(
            "QUERY:  answer(B) :- baskets(B,$1) AND dict($1,X)
             FILTER: COUNT(answer.B) >= 2",
        )
        .unwrap();
        assert_eq!(shard_key_pos(&flock, &BTreeSet::new()), None);
        assert_eq!(shard_key_pos(&flock, &replicated), Some(0));
        // A negated subgoal must be replicated.
        let neg = QueryFlock::parse(
            "QUERY:  answer(B) :- baskets(B,$1) AND NOT dict(B,$1)
             FILTER: COUNT(answer.B) >= 2",
        )
        .unwrap();
        assert_eq!(shard_key_pos(&neg, &BTreeSet::new()), None);
        assert_eq!(shard_key_pos(&neg, &replicated), Some(0));
    }

    #[test]
    fn replicated_subgoal_mentioning_key_var_disqualifies() {
        // `mirror(B,X)` is replicated *and* binds B: a reduction step
        // made only of `mirror` would produce every group on every
        // shard, so the position must be rejected.
        let replicated: BTreeSet<String> = ["mirror".to_string()].into_iter().collect();
        let flock = QueryFlock::parse(
            "QUERY:  answer(B) :- baskets(B,$1) AND mirror(B,X)
             FILTER: COUNT(answer.B) >= 2",
        )
        .unwrap();
        assert_eq!(shard_key_pos(&flock, &replicated), None);
    }

    #[test]
    fn all_replicated_flock_is_not_shardable() {
        // Every shard would hold the whole input and over-count.
        let replicated: BTreeSet<String> = ["baskets".to_string()].into_iter().collect();
        let flock = QueryFlock::parse(
            "QUERY:  answer(B) :- baskets(B,$1)
             FILTER: COUNT(answer.B) >= 2",
        )
        .unwrap();
        assert_eq!(shard_key_pos(&flock, &replicated), None);
    }

    #[test]
    fn partial_flock_round_trips_through_notation() {
        let flock = QueryFlock::parse(
            "QUERY:  answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
             FILTER: COUNT(answer.B) >= 2",
        )
        .unwrap();
        let plan = direct_plan(&flock).unwrap();
        let mini = partial_flock(&plan.steps[0], flock.filter()).unwrap();
        let rendered = mini.render();
        let reparsed = QueryFlock::parse(&rendered).unwrap();
        assert_eq!(reparsed.filter(), mini.filter());
        assert_eq!(
            reparsed.canonical_query_text(),
            flock.canonical_query_text()
        );
    }

    #[test]
    fn two_shard_scatter_matches_single_node() {
        let rows: Vec<Vec<Value>> = (0..20)
            .flat_map(|b| {
                let mut r = vec![vec![Value::int(b), Value::str("beer")]];
                if b % 2 == 0 {
                    r.push(vec![Value::int(b), Value::str("diapers")]);
                }
                r
            })
            .collect();
        let db = basket_db(rows);
        let flock = QueryFlock::parse(
            "QUERY:  answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
             FILTER: COUNT(answer.B) >= 1",
        )
        .unwrap();
        assert_eq!(shard_key_pos(&flock, &BTreeSet::new()), Some(0));
        let ctx = ExecContext::default();
        let plan = direct_plan(&flock).unwrap();
        let single = execute_plan_scored_with(&plan, &db, JoinOrderStrategy::Greedy, &ctx).unwrap();

        let step = &plan.steps[0];
        let mini = partial_flock(step, flock.filter()).unwrap();
        let frags = partition_database(&db, 2, &BTreeSet::new());
        let parts: Vec<Relation> = frags
            .iter()
            .map(|frag| {
                evaluate_scored_partial(&mini, frag, JoinOrderStrategy::Greedy, &ctx).unwrap()
            })
            .collect();
        let merged =
            merge_scored_partials(&flock.filter().agg, scored_schema(step), &parts).unwrap();
        // Vacuous per-shard runs keep every group; the real filter is
        // COUNT >= 1, which everything passes, so the merged scored
        // relation must be bitwise-identical to the single-node one.
        assert_eq!(merged.tuples(), single.scored.tuples());
    }
}
