//! Flock filter conditions.
//!
//! A filter "specifies a condition that the result of the query must
//! satisfy in order for a given assignment of values to the parameters
//! to be acceptable" (§2). The paper's principal results concern
//! *support* filters — a lower bound on the size of the query result —
//! and its future-work section (§5) extends the machinery to any
//! **monotone** condition: "if the condition is true for a given set
//! then it must also be true for any superset", naming `COUNT`, `MIN`,
//! `MAX`, and `SUM` of non-negative numbers.
//!
//! Monotonicity is what makes a-priori pruning *sound*: a subquery's
//! answer is a superset of the full query's answer, so a parameter
//! value failing a monotone condition on the superset must fail it on
//! the subset too.

use qf_storage::{CmpOp, Symbol, Value};

use crate::error::{FlockError, Result};

/// The aggregate a filter applies to the query result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterAgg {
    /// `COUNT(answer.X)` / `COUNT(answer(*))` — the number of (distinct,
    /// under set semantics) answer tuples.
    Count,
    /// `SUM(answer.W)` over head variable `W` (Fig. 10).
    Sum(Symbol),
    /// `MIN(answer.W)`.
    Min(Symbol),
    /// `MAX(answer.W)`.
    Max(Symbol),
}

impl FilterAgg {
    /// The head variable the aggregate reads, if any.
    pub fn head_var(self) -> Option<Symbol> {
        match self {
            FilterAgg::Count => None,
            FilterAgg::Sum(v) | FilterAgg::Min(v) | FilterAgg::Max(v) => Some(v),
        }
    }

    /// The same aggregate reading a different head variable (`COUNT`
    /// is unchanged). Used by canonicalization to replace the raw
    /// variable with its positional name.
    pub fn with_var(self, v: Symbol) -> FilterAgg {
        match self {
            FilterAgg::Count => FilterAgg::Count,
            FilterAgg::Sum(_) => FilterAgg::Sum(v),
            FilterAgg::Min(_) => FilterAgg::Min(v),
            FilterAgg::Max(_) => FilterAgg::Max(v),
        }
    }

    /// SQL/paper spelling.
    pub fn name(self) -> &'static str {
        match self {
            FilterAgg::Count => "COUNT",
            FilterAgg::Sum(_) => "SUM",
            FilterAgg::Min(_) => "MIN",
            FilterAgg::Max(_) => "MAX",
        }
    }
}

/// A filter condition: `AGG(answer…) op threshold`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FilterCondition {
    /// Aggregate over the answer set.
    pub agg: FilterAgg,
    /// Comparison against the threshold.
    pub op: CmpOp,
    /// Threshold constant.
    pub threshold: i64,
}

impl FilterCondition {
    /// The paper's standard support filter: `COUNT(answer) >= threshold`.
    pub fn support(threshold: i64) -> FilterCondition {
        FilterCondition {
            agg: FilterAgg::Count,
            op: CmpOp::Ge,
            threshold,
        }
    }

    /// Weighted support (Fig. 10): `SUM(answer.w) >= threshold`. Only
    /// monotone when all weights are non-negative — checked during
    /// evaluation, not here.
    pub fn weighted_support(weight_var: &str, threshold: i64) -> FilterCondition {
        FilterCondition {
            agg: FilterAgg::Sum(Symbol::intern(weight_var)),
            op: CmpOp::Ge,
            threshold,
        }
    }

    /// Is this condition monotone (true of a set ⇒ true of supersets)?
    ///
    /// Pruning with subquery upper bounds is only sound for monotone
    /// conditions; plan generation refuses non-monotone filters.
    pub fn is_monotone(&self) -> bool {
        match (self.agg, self.op) {
            // Growing a set can only increase COUNT, SUM (of
            // non-negative numbers), and MAX…
            (FilterAgg::Count | FilterAgg::Sum(_) | FilterAgg::Max(_), CmpOp::Ge | CmpOp::Gt) => {
                true
            }
            // …and only decrease MIN.
            (FilterAgg::Min(_), CmpOp::Le | CmpOp::Lt) => true,
            _ => false,
        }
    }

    /// Apply the condition to an aggregate value produced by the engine.
    pub fn accepts(&self, agg_value: Value) -> bool {
        self.op.eval(agg_value.cmp(&Value::int(self.threshold)))
    }

    /// Does every aggregate value accepted by `other` pass `self` too?
    ///
    /// When true, a materialized *scored* result for `self` (parameter
    /// tuples paired with their aggregate values) answers `other`
    /// exactly, by re-filtering rows with [`FilterCondition::accepts`] —
    /// the server's monotone cache reuse: a run at support `s` serves
    /// any later request at `s' ≥ s`.
    ///
    /// The aggregates are compared by their raw `Symbol`, so both sides
    /// must name the aggregate column the same way. Variable names are
    /// spelling, not semantics — `SUM(answer.W)` means different columns
    /// in `answer(B,W)` and `answer(W,Z)` — so callers comparing filters
    /// of *different* programs (the result cache) must first resolve the
    /// variable to its head position via
    /// [`QueryFlock::canonical_filter`](crate::QueryFlock::canonical_filter).
    pub fn subsumes(&self, other: &FilterCondition) -> bool {
        if self.agg != other.agg {
            return false;
        }
        // Threshold arithmetic saturates: thresholds are client-
        // controlled, and `i64::MIN - 1` / `i64::MAX + 1` must not
        // panic. Saturation keeps the comparison exact — at `MIN` the
        // `>=` baseline accepts every value (subsumes any `>`), and at
        // `MAX` the `<=` baseline accepts every value (subsumes any
        // `<`), which is what the clamped bound yields.
        match (self.op, other.op) {
            // `agg >= s` covers `agg >= s'` (and `agg > s'`) for s' ≥ s.
            (CmpOp::Ge, CmpOp::Ge) | (CmpOp::Gt, CmpOp::Gt) => other.threshold >= self.threshold,
            (CmpOp::Ge, CmpOp::Gt) => other.threshold >= self.threshold.saturating_sub(1),
            (CmpOp::Gt, CmpOp::Ge) => other.threshold > self.threshold,
            // Dually for upper bounds.
            (CmpOp::Le, CmpOp::Le) | (CmpOp::Lt, CmpOp::Lt) => other.threshold <= self.threshold,
            (CmpOp::Le, CmpOp::Lt) => other.threshold <= self.threshold.saturating_add(1),
            (CmpOp::Lt, CmpOp::Le) => other.threshold < self.threshold,
            // Equality/inequality only answers itself.
            (CmpOp::Eq, CmpOp::Eq) | (CmpOp::Ne, CmpOp::Ne) => other.threshold == self.threshold,
            _ => false,
        }
    }

    /// Render in the paper's `FILTER:` notation over head variable(s).
    pub fn render(&self, head_pred: &str) -> String {
        let arg = match self.agg.head_var() {
            Some(v) => format!("{head_pred}.{v}"),
            None => format!("{head_pred}(*)"),
        };
        format!(
            "{}({arg}) {} {}",
            self.agg.name(),
            self.op.symbol(),
            self.threshold
        )
    }

    /// Parse `COUNT(answer.B) >= 20`, `COUNT(answer(*)) >= 20`,
    /// `SUM(answer.W) >= 20`, etc.
    pub fn parse(input: &str) -> Result<FilterCondition> {
        let s = input.trim();
        let open = s.find('(').ok_or_else(|| bad(s, "expected `(`"))?;
        let agg_name = s[..open].trim().to_ascii_uppercase();
        let close = s.rfind(')').ok_or_else(|| bad(s, "expected `)`"))?;
        if close < open {
            return Err(bad(s, "mismatched parentheses"));
        }
        let inner = s[open + 1..close].trim();
        let rest = s[close + 1..].trim();

        // inner: `answer.B` or `answer(*)` (with its own parens consumed
        // by rfind — handle `answer(*` remnant) or bare `answer`.
        let var = inner
            .find('.')
            .map(|dot| inner[dot + 1..].trim().to_string());

        let agg = match (agg_name.as_str(), &var) {
            ("COUNT", _) => FilterAgg::Count,
            ("SUM", Some(v)) => FilterAgg::Sum(Symbol::intern(v)),
            ("MIN", Some(v)) => FilterAgg::Min(Symbol::intern(v)),
            ("MAX", Some(v)) => FilterAgg::Max(Symbol::intern(v)),
            (other, None) => {
                return Err(bad(
                    s,
                    format!("{other} requires a column, e.g. {other}(answer.W)"),
                ))
            }
            (other, _) => return Err(bad(s, format!("unknown aggregate `{other}`"))),
        };

        // rest: `>= 20` etc.
        let (op, num) = if let Some(n) = rest.strip_prefix(">=") {
            (CmpOp::Ge, n)
        } else if let Some(n) = rest.strip_prefix("<=") {
            (CmpOp::Le, n)
        } else if let Some(n) = rest.strip_prefix("!=") {
            (CmpOp::Ne, n)
        } else if let Some(n) = rest.strip_prefix('>') {
            (CmpOp::Gt, n)
        } else if let Some(n) = rest.strip_prefix('<') {
            (CmpOp::Lt, n)
        } else if let Some(n) = rest.strip_prefix('=') {
            (CmpOp::Eq, n)
        } else {
            return Err(bad(s, "expected comparison operator after aggregate"));
        };
        let threshold: i64 = num
            .trim()
            .parse()
            .map_err(|_| bad(s, format!("bad threshold `{}`", num.trim())))?;
        Ok(FilterCondition { agg, op, threshold })
    }
}

fn bad(input: &str, detail: impl Into<String>) -> FlockError {
    FlockError::FilterParse {
        input: input.to_string(),
        detail: detail.into(),
    }
}

impl std::fmt::Display for FilterCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render("answer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_is_monotone() {
        assert!(FilterCondition::support(20).is_monotone());
        assert!(FilterCondition::weighted_support("W", 20).is_monotone());
    }

    #[test]
    fn non_monotone_detected() {
        // COUNT <= 20: growing the set can invalidate it.
        let c = FilterCondition {
            agg: FilterAgg::Count,
            op: CmpOp::Le,
            threshold: 20,
        };
        assert!(!c.is_monotone());
        // MIN >= is anti-monotone; MIN <= is monotone.
        let min_ge = FilterCondition {
            agg: FilterAgg::Min(Symbol::intern("W")),
            op: CmpOp::Ge,
            threshold: 5,
        };
        assert!(!min_ge.is_monotone());
        let min_le = FilterCondition {
            agg: FilterAgg::Min(Symbol::intern("W")),
            op: CmpOp::Le,
            threshold: 5,
        };
        assert!(min_le.is_monotone());
    }

    #[test]
    fn accepts_applies_threshold() {
        let c = FilterCondition::support(20);
        assert!(c.accepts(Value::int(20)));
        assert!(c.accepts(Value::int(100)));
        assert!(!c.accepts(Value::int(19)));
    }

    #[test]
    fn parse_paper_forms() {
        let c = FilterCondition::parse("COUNT(answer.B) >= 20").unwrap();
        assert_eq!(c, FilterCondition::support(20));

        let c = FilterCondition::parse("COUNT(answer(*)) >= 20").unwrap();
        assert_eq!(c, FilterCondition::support(20));

        let c = FilterCondition::parse("SUM(answer.W) >= 20").unwrap();
        assert_eq!(c, FilterCondition::weighted_support("W", 20));

        let c = FilterCondition::parse("MIN(answer.W) <= 3").unwrap();
        assert!(c.is_monotone());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FilterCondition::parse("COUNT answer >= 20").is_err());
        assert!(FilterCondition::parse("SUM(answer(*)) >= 20").is_err());
        assert!(FilterCondition::parse("AVG(answer.W) >= 20").is_err());
        assert!(FilterCondition::parse("COUNT(answer.B) >= lots").is_err());
        assert!(FilterCondition::parse("COUNT(answer.B) ~ 20").is_err());
    }

    #[test]
    fn subsumption_covers_tightened_thresholds() {
        let base = FilterCondition::support(10);
        assert!(base.subsumes(&FilterCondition::support(10)));
        assert!(base.subsumes(&FilterCondition::support(25)));
        assert!(!base.subsumes(&FilterCondition::support(9)));
        // `COUNT > 9` and `COUNT >= 10` accept the same integers.
        let gt9 = FilterCondition {
            agg: FilterAgg::Count,
            op: CmpOp::Gt,
            threshold: 9,
        };
        assert!(base.subsumes(&gt9));
        assert!(gt9.subsumes(&base));
        // Different aggregates never subsume.
        assert!(!base.subsumes(&FilterCondition::weighted_support("W", 25)));
        // MIN upper bounds are the dual: smaller threshold tightens.
        let min = |t| FilterCondition {
            agg: FilterAgg::Min(Symbol::intern("W")),
            op: CmpOp::Le,
            threshold: t,
        };
        assert!(min(5).subsumes(&min(3)));
        assert!(!min(3).subsumes(&min(5)));
    }

    #[test]
    fn subsumption_thresholds_at_i64_extremes_do_not_panic() {
        let ge = |t| FilterCondition {
            agg: FilterAgg::Count,
            op: CmpOp::Ge,
            threshold: t,
        };
        let gt = |t| FilterCondition {
            agg: FilterAgg::Count,
            op: CmpOp::Gt,
            threshold: t,
        };
        // `COUNT >= MIN` accepts every value, so it subsumes any `>`.
        assert!(ge(i64::MIN).subsumes(&gt(i64::MIN)));
        assert!(ge(i64::MIN).subsumes(&gt(42)));
        assert!(!gt(i64::MIN).subsumes(&ge(i64::MIN)));
        // Dual: `MIN <= MAX` accepts every value, subsumes any `<`.
        let le = |t| FilterCondition {
            agg: FilterAgg::Min(Symbol::intern("W")),
            op: CmpOp::Le,
            threshold: t,
        };
        let lt = |t| FilterCondition {
            agg: FilterAgg::Min(Symbol::intern("W")),
            op: CmpOp::Lt,
            threshold: t,
        };
        assert!(le(i64::MAX).subsumes(&lt(i64::MAX)));
        assert!(le(i64::MAX).subsumes(&lt(0)));
        assert!(!lt(i64::MAX).subsumes(&le(i64::MAX)));
    }

    #[test]
    fn render_roundtrip() {
        let c = FilterCondition::support(20);
        assert_eq!(c.render("answer"), "COUNT(answer(*)) >= 20");
        let parsed = FilterCondition::parse(&c.render("answer")).unwrap();
        assert_eq!(parsed, c);
    }
}
