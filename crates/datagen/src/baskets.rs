//! IBM-Quest-style market-basket generator.
//!
//! Follows the synthetic-data methodology of \[AS94\] (the a-priori
//! paper): draw a pool of *potentially frequent itemsets*, then assemble
//! each basket from a few of those patterns plus random noise items.
//! The result has the two properties mining workloads live on: a small
//! set of genuinely associated item groups, buried in a long tail of
//! items that never reach support.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qf_storage::{Relation, Schema, Value};

use crate::zipf::Zipf;

/// Parameters for the basket generator (names follow \[AS94\]: `|D|`
/// transactions, `|T|` average size, `|I|` pattern size, `N` items,
/// `|L|` patterns).
#[derive(Clone, Debug)]
pub struct BasketConfig {
    /// Number of baskets (transactions), `|D|`.
    pub n_baskets: usize,
    /// Average items per basket, `|T|`.
    pub avg_basket_size: usize,
    /// Total distinct items, `N`.
    pub n_items: usize,
    /// Number of potentially frequent patterns, `|L|`.
    pub n_patterns: usize,
    /// Average items per pattern, `|I|`.
    pub avg_pattern_size: usize,
    /// Probability a basket draws from a pattern (vs. pure noise).
    pub pattern_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BasketConfig {
    fn default() -> Self {
        BasketConfig {
            n_baskets: 1000,
            avg_basket_size: 10,
            n_items: 500,
            n_patterns: 20,
            avg_pattern_size: 4,
            pattern_prob: 0.7,
            seed: 1,
        }
    }
}

/// Generated basket data.
#[derive(Clone, Debug)]
pub struct BasketData {
    /// The `baskets(BID, Item)` relation.
    pub baskets: Relation,
    /// The embedded patterns (ground truth for tests): item ids per
    /// pattern.
    pub patterns: Vec<Vec<usize>>,
    /// Raw transactions (basket id order, item ids), for file-based
    /// miners that skip the relational layer.
    pub transactions: Vec<Vec<usize>>,
}

/// Item id → interned item name (`item0001`).
pub fn item_name(id: usize) -> String {
    format!("item{id:04}")
}

/// Generate basket data.
pub fn generate(config: &BasketConfig) -> BasketData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Patterns pick their items Zipf-skewed so some patterns share items.
    let zipf = Zipf::new(config.n_items, 0.8);
    let mut patterns: Vec<Vec<usize>> = Vec::with_capacity(config.n_patterns);
    for _ in 0..config.n_patterns {
        let size = sample_size(&mut rng, config.avg_pattern_size, 2);
        let mut items: Vec<usize> = Vec::with_capacity(size);
        while items.len() < size {
            let item = zipf.sample(&mut rng);
            if !items.contains(&item) {
                items.push(item);
            }
        }
        items.sort_unstable();
        patterns.push(items);
    }
    // Pattern popularity is itself skewed.
    let pattern_pick = Zipf::new(config.n_patterns.max(1), 1.0);

    let mut transactions: Vec<Vec<usize>> = Vec::with_capacity(config.n_baskets);
    for _ in 0..config.n_baskets {
        let size = sample_size(&mut rng, config.avg_basket_size, 1);
        let mut basket: Vec<usize> = Vec::with_capacity(size);
        while basket.len() < size {
            if !patterns.is_empty() && rng.gen_bool(config.pattern_prob) {
                let p = &patterns[pattern_pick.sample(&mut rng)];
                for &item in p {
                    if basket.len() >= size {
                        break;
                    }
                    if !basket.contains(&item) {
                        basket.push(item);
                    }
                }
            } else {
                let item = rng.gen_range(0..config.n_items);
                if !basket.contains(&item) {
                    basket.push(item);
                }
            }
        }
        basket.sort_unstable();
        transactions.push(basket);
    }

    let mut rows = Vec::new();
    for (bid, items) in transactions.iter().enumerate() {
        for &item in items {
            rows.push(vec![Value::int(bid as i64), Value::str(&item_name(item))]);
        }
    }
    BasketData {
        baskets: Relation::from_rows(Schema::new("baskets", &["bid", "item"]), rows),
        patterns,
        transactions,
    }
}

/// Basket weights for the Fig. 10 monotone-SUM flock: an
/// `importance(BID, W)` relation with non-negative weights, skewed so a
/// few baskets carry most of the mass.
pub fn importance(config: &BasketConfig, max_weight: i64) -> Relation {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e3779b97f4a7c15);
    let rows: Vec<Vec<Value>> = (0..config.n_baskets)
        .map(|bid| {
            // Squared uniform → right-skewed in [1, max].
            let u: f64 = rng.gen();
            let w = 1 + (u * u * (max_weight - 1) as f64) as i64;
            vec![Value::int(bid as i64), Value::int(w)]
        })
        .collect();
    Relation::from_rows(Schema::new("importance", &["bid", "w"]), rows)
}

/// Poisson-ish size: geometric jitter around a mean with a floor.
fn sample_size(rng: &mut StdRng, mean: usize, floor: usize) -> usize {
    let jitter: f64 = rng.gen_range(0.5..1.5);
    ((mean as f64 * jitter).round() as usize).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = BasketConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.baskets, b.baskets);
        assert_eq!(a.patterns, b.patterns);
    }

    #[test]
    fn shape_matches_config() {
        let c = BasketConfig {
            n_baskets: 200,
            avg_basket_size: 8,
            ..BasketConfig::default()
        };
        let d = generate(&c);
        let bids = d.baskets.distinct(0);
        assert!(bids > 190, "almost all baskets non-empty, got {bids}");
        let avg = d.baskets.len() as f64 / bids as f64;
        assert!((4.0..=14.0).contains(&avg), "avg basket size {avg}");
    }

    #[test]
    fn patterns_are_frequent() {
        let c = BasketConfig::default();
        let d = generate(&c);
        // The most popular pattern's first pair should co-occur in far
        // more baskets than a random pair would.
        let p = &d.patterns[0];
        if p.len() >= 2 {
            let co = d
                .transactions
                .iter()
                .filter(|t| t.contains(&p[0]) && t.contains(&p[1]))
                .count();
            assert!(co >= 10, "pattern pair co-occurs only {co} times");
        }
    }

    #[test]
    fn importance_nonnegative_and_deterministic() {
        let c = BasketConfig::default();
        let w1 = importance(&c, 100);
        let w2 = importance(&c, 100);
        assert_eq!(w1, w2);
        assert_eq!(w1.len(), c.n_baskets);
        for t in w1.iter() {
            let w = t.get(1).as_int().unwrap();
            assert!((1..=100).contains(&w));
        }
    }
}
