//! The Ex. 2.3 HTML-corpus generator.
//!
//! Produces `inTitle(Doc, Word)`, `inAnchor(Anchor, Word)`, and
//! `link(Anchor, SrcDoc, DstDoc)` with planted strongly-connected word
//! pairs: pairs that co-occur in titles *and* appear split across
//! anchor/target-title — the two relationships the Fig. 4 union flock
//! counts together. Anchor ids and document ids are drawn from disjoint
//! ranges, honouring the paper's "no values in common between these two
//! types of ID's" assumption.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qf_storage::{Database, Relation, Schema, Value};

use crate::zipf::Zipf;

/// Parameters for the web-corpus generator.
#[derive(Clone, Debug)]
pub struct WebConfig {
    /// Number of documents.
    pub n_docs: usize,
    /// Number of anchors (links).
    pub n_anchors: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Words per title.
    pub words_per_title: usize,
    /// Words per anchor text.
    pub words_per_anchor: usize,
    /// Number of planted strongly-connected word pairs.
    pub n_planted: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            n_docs: 800,
            n_anchors: 1600,
            vocabulary: 2000,
            words_per_title: 5,
            words_per_anchor: 3,
            n_planted: 3,
            seed: 1,
        }
    }
}

/// Generated web corpus plus ground truth.
#[derive(Clone, Debug)]
pub struct WebData {
    /// Database with `inTitle`, `inAnchor`, `link`.
    pub db: Database,
    /// Planted strongly-connected word pairs (lexicographically ordered).
    pub planted: Vec<(String, String)>,
}

fn word(i: usize) -> String {
    format!("w{i:05}")
}

/// Anchor ids live above this offset so they never collide with doc ids.
pub const ANCHOR_ID_BASE: i64 = 1_000_000;

/// Generate the corpus.
pub fn generate(config: &WebConfig) -> WebData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.vocabulary, 1.0);

    // Planted pairs use two dedicated words each, placed together often.
    let planted: Vec<(usize, usize)> = (0..config.n_planted)
        .map(|i| (config.vocabulary + 2 * i, config.vocabulary + 2 * i + 1))
        .collect();

    let mut in_title = Vec::new();
    for doc in 0..config.n_docs {
        let did = Value::int(doc as i64);
        for _ in 0..config.words_per_title {
            in_title.push(vec![did, Value::str(&word(zipf.sample(&mut rng)))]);
        }
        // Sprinkle planted pairs into ~5% of titles each.
        for &(a, b) in &planted {
            if rng.gen_bool(0.05) {
                in_title.push(vec![did, Value::str(&word(a))]);
                in_title.push(vec![did, Value::str(&word(b))]);
            }
        }
    }

    let mut in_anchor = Vec::new();
    let mut link = Vec::new();
    for anchor in 0..config.n_anchors {
        let aid = Value::int(ANCHOR_ID_BASE + anchor as i64);
        let src = rng.gen_range(0..config.n_docs) as i64;
        let dst = rng.gen_range(0..config.n_docs) as i64;
        link.push(vec![aid, Value::int(src), Value::int(dst)]);
        for _ in 0..config.words_per_anchor {
            in_anchor.push(vec![aid, Value::str(&word(zipf.sample(&mut rng)))]);
        }
        // Planted: anchor holds word a, target title holds word b (and
        // vice versa on other anchors).
        for &(a, b) in &planted {
            if rng.gen_bool(0.04) {
                let (wa, wt) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
                in_anchor.push(vec![aid, Value::str(&word(wa))]);
                in_title.push(vec![Value::int(dst), Value::str(&word(wt))]);
            }
        }
    }

    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("inTitle", &["doc", "word"]),
        in_title,
    ));
    db.insert(Relation::from_rows(
        Schema::new("inAnchor", &["anchor", "word"]),
        in_anchor,
    ));
    db.insert(Relation::from_rows(
        Schema::new("link", &["anchor", "src", "dst"]),
        link,
    ));
    WebData {
        db,
        planted: planted
            .into_iter()
            .map(|(a, b)| {
                let (a, b) = (word(a), word(b));
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};

    #[test]
    fn deterministic() {
        let c = WebConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.db.get("inTitle").unwrap(), b.db.get("inTitle").unwrap());
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn id_spaces_disjoint() {
        let d = generate(&WebConfig::default());
        let max_doc = d.db.get("inTitle").unwrap().stats().column(0).max.unwrap();
        let min_anchor = d.db.get("inAnchor").unwrap().stats().column(0).min.unwrap();
        assert!(max_doc < min_anchor, "{max_doc:?} vs {min_anchor:?}");
    }

    #[test]
    fn planted_pairs_mined_by_fig4_flock() {
        let data = generate(&WebConfig::default());
        let flock = QueryFlock::parse(
            "QUERY:
             answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
             answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
             FILTER: COUNT(answer(*)) >= 20",
        )
        .unwrap();
        let result = evaluate_direct(&flock, &data.db, JoinOrderStrategy::Greedy).unwrap();
        for (a, b) in &data.planted {
            let found = result
                .iter()
                .any(|t| t.get(0) == Value::str(a) && t.get(1) == Value::str(b));
            assert!(found, "planted pair ({a},{b}) missing from {result:?}");
        }
    }
}
