//! Random digraphs for the Ex. 4.3 "pathological" path flock.
//!
//! The Fig. 6 flock asks, for each node `$1`, whether at least `c`
//! successors have a length-`n` path extending from them. Its (n+1)-step
//! chain plan (Fig. 7) wins when out-degrees are skewed: most nodes fail
//! the degree test immediately and never participate in the long join.
//! The generator plants exactly that structure — a few high-out-degree
//! "hubs" whose successors chain onward, against a sparse background.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qf_storage::{Relation, Schema, Value};

/// Parameters for the digraph generator.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Background random arcs.
    pub n_random_arcs: usize,
    /// Number of hub nodes (high out-degree, chains extending onward).
    pub n_hubs: usize,
    /// Out-degree of each hub.
    pub hub_degree: usize,
    /// Length of the chain planted after each hub successor.
    pub chain_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            n_nodes: 2000,
            n_random_arcs: 4000,
            n_hubs: 5,
            hub_degree: 30,
            chain_len: 6,
            seed: 1,
        }
    }
}

/// Generate an `arc(Src, Dst)` relation.
pub fn generate(config: &GraphConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows = Vec::new();
    let n = config.n_nodes as i64;

    // Background sparse arcs.
    for _ in 0..config.n_random_arcs {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        rows.push(vec![Value::int(s), Value::int(t)]);
    }

    // Hubs: node h has `hub_degree` successors; each successor starts a
    // planted chain of length `chain_len` (nodes allocated above n to
    // keep chains disjoint from the background).
    let mut next_fresh = n;
    for h in 0..config.n_hubs as i64 {
        for d in 0..config.hub_degree {
            let succ = next_fresh;
            next_fresh += 1;
            rows.push(vec![Value::int(h), Value::int(succ)]);
            let mut prev = succ;
            for _ in 0..config.chain_len {
                let node = next_fresh;
                next_fresh += 1;
                rows.push(vec![Value::int(prev), Value::int(node)]);
                prev = node;
            }
            let _ = d;
        }
    }

    Relation::from_rows(Schema::new("arc", &["src", "dst"]), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = GraphConfig::default();
        assert_eq!(generate(&c), generate(&c));
    }

    #[test]
    fn hubs_have_high_out_degree() {
        let c = GraphConfig::default();
        let arcs = generate(&c);
        for h in 0..c.n_hubs as i64 {
            let deg = arcs.iter().filter(|t| t.get(0) == Value::int(h)).count();
            assert!(
                deg >= c.hub_degree,
                "hub {h} has out-degree {deg} < {}",
                c.hub_degree
            );
        }
    }

    #[test]
    fn chains_extend_from_hub_successors() {
        let c = GraphConfig {
            n_nodes: 100,
            n_random_arcs: 50,
            n_hubs: 1,
            hub_degree: 3,
            chain_len: 4,
            ..GraphConfig::default()
        };
        let arcs = generate(&c);
        // Follow one hub successor's chain.
        let succ = arcs
            .iter()
            .find(|t| t.get(0) == Value::int(0) && t.get(1).as_int().unwrap() >= 100)
            .expect("hub successor")
            .get(1);
        let mut cur = succ;
        for step in 0..c.chain_len {
            let next = arcs.iter().find(|t| t.get(0) == cur);
            assert!(next.is_some(), "chain broken at step {step}");
            cur = next.unwrap().get(1);
        }
    }
}
