//! The Ex. 2.2 medical database generator.
//!
//! Produces the four relations of the side-effects flock —
//! `diagnoses(Patient, Disease)`, `exhibits(Patient, Symptom)`,
//! `treatments(Patient, Medicine)`, `causes(Disease, Symptom)` — with
//! the selectivity knobs the §3.2 discussion turns on: "whether it is
//! worth basing a preliminary step on (1) and/or (2) depends on the
//! density of rare symptoms and medicines."
//!
//! Each patient has exactly one disease (the paper's simplifying
//! assumption). A configurable fraction of symptom/medicine mass goes
//! to per-patient rare values that can never reach support; the rest is
//! drawn Zipf-style from common pools, including disease-caused
//! symptoms (which the `NOT causes` subgoal must explain away) and a
//! planted unexplained side-effect per popular medicine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qf_storage::{Database, Relation, Schema, Value};

use crate::zipf::Zipf;

/// Parameters for the medical generator.
#[derive(Clone, Debug)]
pub struct MedicalConfig {
    /// Number of patients.
    pub n_patients: usize,
    /// Number of diseases.
    pub n_diseases: usize,
    /// Number of common symptoms.
    pub n_symptoms: usize,
    /// Number of medicines.
    pub n_medicines: usize,
    /// Symptoms exhibited per patient (before dedup).
    pub symptoms_per_patient: usize,
    /// Medicines taken per patient (before dedup).
    pub medicines_per_patient: usize,
    /// Fraction of symptom/medicine draws that produce a per-patient
    /// rare value (below any support threshold). This is the §3.2
    /// "density of rare symptoms and medicines" knob.
    pub rare_fraction: f64,
    /// Symptoms each disease is known to cause.
    pub causes_per_disease: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MedicalConfig {
    fn default() -> Self {
        MedicalConfig {
            n_patients: 2000,
            n_diseases: 50,
            n_symptoms: 200,
            n_medicines: 100,
            symptoms_per_patient: 3,
            medicines_per_patient: 2,
            rare_fraction: 0.3,
            causes_per_disease: 4,
            seed: 1,
        }
    }
}

/// Generated medical data plus ground truth.
#[derive(Clone, Debug)]
pub struct MedicalData {
    /// Database with `diagnoses`, `exhibits`, `treatments`, `causes`.
    pub db: Database,
    /// Planted (medicine, unexplained symptom) side-effect pairs.
    pub planted: Vec<(String, String)>,
}

fn disease(i: usize) -> String {
    format!("disease{i:03}")
}
fn symptom(i: usize) -> String {
    format!("symptom{i:03}")
}
fn medicine(i: usize) -> String {
    format!("med{i:03}")
}

/// Generate the medical database.
pub fn generate(config: &MedicalConfig) -> MedicalData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let disease_pick = Zipf::new(config.n_diseases, 0.8);
    let symptom_pick = Zipf::new(config.n_symptoms, 1.0);
    let medicine_pick = Zipf::new(config.n_medicines, 1.0);

    // causes(Disease, Symptom): each disease causes a few symptoms from
    // the common pool (skewed, so popular symptoms are often explained).
    let mut causes_rows = Vec::new();
    let mut caused: Vec<Vec<usize>> = vec![Vec::new(); config.n_diseases];
    for (d, caused_d) in caused.iter_mut().enumerate() {
        while caused_d.len() < config.causes_per_disease {
            let s = symptom_pick.sample(&mut rng);
            if !caused_d.contains(&s) {
                caused_d.push(s);
                causes_rows.push(vec![Value::str(&disease(d)), Value::str(&symptom(s))]);
            }
        }
    }

    // Planted side-effects: medicine m (popular ranks) reliably produces
    // symptom `sideeffect_of_m` which no disease causes.
    let n_planted = (config.n_medicines / 20).max(1);
    let mut planted = Vec::new();
    for m in 0..n_planted {
        planted.push((medicine(m), format!("sideeffect{m:02}")));
    }

    let mut diagnoses_rows = Vec::new();
    let mut exhibits_rows = Vec::new();
    let mut treatments_rows = Vec::new();
    for p in 0..config.n_patients {
        let pid = Value::int(p as i64);
        let d = disease_pick.sample(&mut rng);
        diagnoses_rows.push(vec![pid, Value::str(&disease(d))]);

        // Symptoms: disease-caused ones (explained), commons, rares.
        for _ in 0..config.symptoms_per_patient {
            let roll: f64 = rng.gen();
            let name = if roll < config.rare_fraction {
                format!("raresym_p{p}_{}", rng.gen_range(0..10))
            } else if roll < config.rare_fraction + 0.3 && !caused[d].is_empty() {
                symptom(caused[d][rng.gen_range(0..caused[d].len())])
            } else {
                symptom(symptom_pick.sample(&mut rng))
            };
            exhibits_rows.push(vec![pid, Value::str(&name)]);
        }

        // Medicines, with the planted side-effect wired in.
        for _ in 0..config.medicines_per_patient {
            let roll: f64 = rng.gen();
            if roll < config.rare_fraction {
                let name = format!("raremed_p{p}_{}", rng.gen_range(0..10));
                treatments_rows.push(vec![pid, Value::str(&name)]);
            } else {
                let m = medicine_pick.sample(&mut rng);
                treatments_rows.push(vec![pid, Value::str(&medicine(m))]);
                if m < n_planted && rng.gen_bool(0.8) {
                    exhibits_rows.push(vec![pid, Value::str(&format!("sideeffect{m:02}"))]);
                }
            }
        }
    }

    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("diagnoses", &["patient", "disease"]),
        diagnoses_rows,
    ));
    db.insert(Relation::from_rows(
        Schema::new("exhibits", &["patient", "symptom"]),
        exhibits_rows,
    ));
    db.insert(Relation::from_rows(
        Schema::new("treatments", &["patient", "medicine"]),
        treatments_rows,
    ));
    db.insert(Relation::from_rows(
        Schema::new("causes", &["disease", "symptom"]),
        causes_rows,
    ));
    MedicalData { db, planted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_core::{evaluate_direct, JoinOrderStrategy, QueryFlock};

    #[test]
    fn deterministic() {
        let c = MedicalConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.db.get("exhibits").unwrap(), b.db.get("exhibits").unwrap());
    }

    #[test]
    fn schema_complete() {
        let d = generate(&MedicalConfig::default());
        for name in ["diagnoses", "exhibits", "treatments", "causes"] {
            assert!(d.db.contains(name), "missing {name}");
        }
        assert_eq!(d.db.get("diagnoses").unwrap().len(), 2000);
    }

    #[test]
    fn planted_side_effects_are_discoverable() {
        let config = MedicalConfig {
            n_patients: 1500,
            ..MedicalConfig::default()
        };
        let data = generate(&config);
        let flock = QueryFlock::with_support(
            "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
             diagnoses(P,D) AND NOT causes(D,$s)",
            20,
        )
        .unwrap();
        let result = evaluate_direct(&flock, &data.db, JoinOrderStrategy::Greedy).unwrap();
        // Every planted pair must be found (columns: $m, $s).
        for (med, sym) in &data.planted {
            let found = result
                .iter()
                .any(|t| t.get(0) == Value::str(med) && t.get(1) == Value::str(sym));
            assert!(
                found,
                "planted pair ({med}, {sym}) not mined; got {result:?}"
            );
        }
    }

    #[test]
    fn rare_values_exist() {
        let d = generate(&MedicalConfig::default());
        let exhibits = d.db.get("exhibits").unwrap();
        let rare = exhibits
            .iter()
            .filter(|t| t.get(1).to_string().starts_with("raresym"))
            .count();
        assert!(rare > 100, "rare symptoms missing: {rare}");
    }
}
