//! Zipf word/document generator — the "newspaper articles" workload.
//!
//! §1.3: the authors ran the Fig. 1 query over "word occurrences in
//! newspaper articles" and saw a 20-fold speedup from the a-priori
//! rewrite. The decisive property of that data is Zipfian word
//! frequency: a handful of words occur in many documents, the long tail
//! occurs once or twice and can never reach support. This generator
//! reproduces that shape.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qf_storage::{Relation, Schema, Value};

use crate::zipf::Zipf;

/// Parameters for the word-occurrence generator.
#[derive(Clone, Debug)]
pub struct WordsConfig {
    /// Number of documents (baskets).
    pub n_docs: usize,
    /// Words drawn per document (tokens; duplicates collapse).
    pub words_per_doc: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent (≈1.0 for natural language).
    pub exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WordsConfig {
    fn default() -> Self {
        WordsConfig {
            n_docs: 1000,
            words_per_doc: 30,
            vocabulary: 5000,
            exponent: 1.0,
            seed: 1,
        }
    }
}

/// Word id → name (`w00042`).
pub fn word_name(id: usize) -> String {
    format!("w{id:05}")
}

/// Generate a `baskets(DocId, Word)` relation of word occurrences.
pub fn generate(config: &WordsConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.vocabulary, config.exponent);
    let mut rows = Vec::with_capacity(config.n_docs * config.words_per_doc);
    for doc in 0..config.n_docs {
        for _ in 0..config.words_per_doc {
            let w = zipf.sample(&mut rng);
            rows.push(vec![Value::int(doc as i64), Value::str(&word_name(w))]);
        }
    }
    // Relation construction dedups repeated (doc, word) pairs — set
    // semantics does "distinct words per document" for us.
    Relation::from_rows(Schema::new("baskets", &["bid", "item"]), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_shape() {
        let config = WordsConfig::default();
        let rel = generate(&config);
        // Count documents per word for the top word vs. a mid-tail word.
        let mut counts = std::collections::HashMap::new();
        for t in rel.iter() {
            *counts.entry(t.get(1)).or_insert(0usize) += 1;
        }
        let top = counts.get(&Value::str(&word_name(0))).copied().unwrap_or(0);
        let mid = counts
            .get(&Value::str(&word_name(500)))
            .copied()
            .unwrap_or(0);
        assert!(top > 50, "top word in {top} docs");
        assert!(top > mid * 5, "no skew: top {top}, mid {mid}");
        // Most vocabulary never appears or appears rarely.
        let rare = (0..config.vocabulary)
            .filter(|&w| counts.get(&Value::str(&word_name(w))).copied().unwrap_or(0) < 5)
            .count();
        assert!(rare > config.vocabulary / 2);
    }

    #[test]
    fn deterministic() {
        let c = WordsConfig::default();
        assert_eq!(generate(&c), generate(&c));
    }

    #[test]
    fn doc_word_pairs_distinct() {
        let rel = generate(&WordsConfig::default());
        // Set semantics: no duplicate (doc, word) tuples by construction
        // of Relation; sanity-check cardinality is below token count.
        assert!(rel.len() <= 1000 * 30);
        assert!(rel.len() > 1000 * 5, "too much dedup would mean a bug");
    }
}
