//! # qf-datagen — synthetic workloads for the query-flocks experiments
//!
//! The paper evaluates its ideas on data we cannot ship: word
//! occurrences in newspaper articles (§1.3), retail market baskets,
//! medical records (Ex. 2.2), and an HTML crawl (Ex. 2.3). This crate
//! generates statistically faithful stand-ins:
//!
//! * [`baskets`] — IBM-Quest-style market baskets (frequent patterns
//!   embedded in noise) plus basket weights for the Fig. 10 flock;
//! * [`words`] — Zipf-distributed word/document data matching the skew
//!   of natural-language token frequencies (the regime where the paper
//!   observed its 20× speedup);
//! * [`medical`] — the Ex. 2.2 schema with selectivity knobs for rare
//!   symptoms/medicines (the §3.2 trade-off discussion);
//! * [`web`] — the Ex. 2.3 schema (`inTitle`/`inAnchor`/`link`);
//! * [`graph`] — random digraphs for the Ex. 4.3 path flock;
//! * [`zipf`] — the shared Zipf sampler.
//!
//! All generators take an explicit seed and are deterministic.

#![warn(missing_docs)]

pub mod baskets;
pub mod graph;
pub mod medical;
pub mod web;
pub mod words;
pub mod zipf;

pub use baskets::{BasketConfig, BasketData};
pub use graph::GraphConfig;
pub use medical::{MedicalConfig, MedicalData};
pub use web::{WebConfig, WebData};
pub use words::WordsConfig;
pub use zipf::Zipf;
