//! Zipf-distributed sampling.
//!
//! Natural-language word frequencies follow Zipf's law with exponent
//! close to 1; the paper's 20× observation was made on "word occurrences
//! in newspaper articles" (§1.3), so the word generator needs this skew.
//! Implemented locally (inverse-CDF over a precomputed table) because
//! `rand_distr` is outside the allowed dependency set.

use rand::Rng;

/// A Zipf(n, s) sampler over ranks `0..n`: rank `k` has probability
/// proportional to `1/(k+1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point round-down at the tail.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..n` (0 = most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            counts[k] += 1;
        }
        // Rank 0 should dominate rank 99 by roughly 100× (Zipf-1).
        assert!(
            counts[0] > counts[99] * 20,
            "{} vs {}",
            counts[0],
            counts[99]
        );
        // …and the tail is still reachable.
        assert!(counts[500..].iter().sum::<usize>() > 0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(0) > z.pmf(1));
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
