//! Market-basket mining end to end on a generated Quest-style workload:
//! the Fig. 2 flock, the a-priori plan, the classic levelwise miner,
//! and §1.1's association measures.
//!
//! ```text
//! cargo run --release --example market_basket
//! ```

use query_flocks::core::{
    evaluate_direct, execute_plan, single_param_plan, JoinOrderStrategy, QueryFlock,
};
use query_flocks::datagen::baskets::{self, BasketConfig};
use query_flocks::mine::{generate_rules, mine_apriori, mine_flockwise};
use query_flocks::storage::Database;

fn main() {
    let config = BasketConfig {
        n_baskets: 2000,
        avg_basket_size: 8,
        n_items: 400,
        n_patterns: 15,
        ..BasketConfig::default()
    };
    let data = baskets::generate(&config);
    let mut db = Database::new();
    db.insert(data.baskets.clone());
    let threshold = 25i64;

    println!(
        "workload: {} baskets, {} distinct items, support threshold {}",
        config.n_baskets,
        data.baskets.distinct(1),
        threshold
    );

    // 1. The pair flock, direct vs. planned.
    let flock = QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        threshold,
    )
    .unwrap();
    let start = std::time::Instant::now();
    let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
    let direct_t = start.elapsed();

    let plan = single_param_plan(&flock, &db).unwrap();
    let start = std::time::Instant::now();
    let planned = execute_plan(&plan, &db, JoinOrderStrategy::Greedy).unwrap();
    let plan_t = start.elapsed();
    assert_eq!(direct.tuples(), planned.result.tuples());

    println!(
        "\nfrequent pairs: {} (direct {:?}, a-priori plan {:?})",
        direct.len(),
        direct_t,
        plan_t
    );
    for step in &planned.steps {
        println!(
            "  step {:<18} answers={:<7} groups={:<6} survivors={:<6} ({:.0}% eliminated)",
            step.name,
            step.answer_tuples,
            step.groups,
            step.survivors,
            step.elimination_rate() * 100.0
        );
    }

    // 2. Levelwise itemsets via flocks, checked against the classic miner.
    let levels = mine_flockwise(&db, threshold, 3).unwrap();
    let txns: Vec<Vec<u32>> = data
        .transactions
        .iter()
        .map(|t| t.iter().map(|&i| i as u32).collect())
        .collect();
    let classic = mine_apriori(&txns, threshold as u64, 3);
    println!("\nlevelwise frequent itemsets (flocks vs classic):");
    for (k, rel) in levels.iter().enumerate() {
        println!(
            "  k={}: {} itemsets (classic: {})",
            k + 1,
            rel.len(),
            classic.frequent_k(k + 1).len()
        );
    }

    // 3. Association rules with support / confidence / interest (§1.1).
    let rules = generate_rules(&classic, 0.7);
    println!("\ntop rules by confidence:");
    for r in rules.iter().take(8) {
        let ante: Vec<String> = r
            .antecedent
            .iter()
            .map(|&i| baskets::item_name(i as usize))
            .collect();
        println!(
            "  {{{}}} -> {}  supp={:.3} conf={:.2} interest={:.1}",
            ante.join(","),
            baskets::item_name(r.consequent as usize),
            r.support,
            r.confidence,
            r.interest
        );
    }
}
