//! The Ex. 2.3 strongly-connected-words flock: a union of three
//! extended conjunctive queries over an HTML corpus, optimized with the
//! §3.4 union-of-subqueries prefilter.
//!
//! ```text
//! cargo run --release --example web_words
//! ```

use std::collections::BTreeSet;

use query_flocks::core::{
    evaluate_direct, execute_plan, param_set_plan, JoinOrderStrategy, QueryFlock,
};
use query_flocks::datagen::web::{self, WebConfig};
use query_flocks::storage::Symbol;

fn main() {
    let data = web::generate(&WebConfig {
        n_docs: 1500,
        n_anchors: 3000,
        vocabulary: 4000,
        ..WebConfig::default()
    });
    let flock = QueryFlock::parse(
        "QUERY:
         answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
         answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
         answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
         FILTER:
         COUNT(answer(*)) >= 20",
    )
    .unwrap();

    println!("The Fig. 4 union flock:\n{flock}\n");

    let start = std::time::Instant::now();
    let direct = evaluate_direct(&flock, &data.db, JoinOrderStrategy::Greedy).unwrap();
    let direct_t = start.elapsed();

    // Ex. 3.3: prefilter each word parameter with the union of the three
    // per-branch safe subqueries (title count + anchor count +
    // anchor-target count must jointly reach support).
    let p1: BTreeSet<Symbol> = [Symbol::intern("1")].into_iter().collect();
    let p2: BTreeSet<Symbol> = [Symbol::intern("2")].into_iter().collect();
    let plan = param_set_plan(&flock, &data.db, &[p1, p2]).unwrap();
    println!("Union-prefilter plan:\n{plan}\n");

    let start = std::time::Instant::now();
    let planned = execute_plan(&plan, &data.db, JoinOrderStrategy::Greedy).unwrap();
    let plan_t = start.elapsed();
    assert_eq!(direct.tuples(), planned.result.tuples());

    println!(
        "strongly connected word pairs: {} (direct {:?}, prefiltered {:?})",
        direct.len(),
        direct_t,
        plan_t
    );
    for t in direct.iter().take(15) {
        println!("  {} ~ {}", t.get(0), t.get(1));
    }
    println!("(planted ground truth: {:?})", data.planted);
}
