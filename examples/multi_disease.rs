//! Intermediate predicates: the multi-disease side-effects flock.
//!
//! Ex. 2.2 assumes one disease per patient and notes that handling
//! several diseases "would have to extend our query-flocks language to
//! allow intermediate predicates … That extension is feasible." This
//! example is that extension at work: a view `explained(P,S)` collects
//! the symptoms from *all* of a patient's diseases, and the flock
//! negates the view. Without it, Fig. 3's flock reports false
//! positives for comorbid patients.
//!
//! ```text
//! cargo run --example multi_disease
//! ```

use query_flocks::core::{evaluate_direct, FlockProgram, JoinOrderStrategy, QueryFlock};
use query_flocks::storage::{Database, Relation, Schema, Value};

fn main() {
    // 30 patients have BOTH flu and pox; pox causes their fever, flu
    // does not. 30 more have only flu and an unexplained ache.
    let mut diagnoses = Vec::new();
    let mut exhibits = Vec::new();
    let mut treatments = Vec::new();
    for p in 0..30i64 {
        diagnoses.push(vec![Value::int(p), Value::str("flu")]);
        diagnoses.push(vec![Value::int(p), Value::str("pox")]);
        exhibits.push(vec![Value::int(p), Value::str("fever")]);
        treatments.push(vec![Value::int(p), Value::str("zorix")]);
    }
    for p in 30..60i64 {
        diagnoses.push(vec![Value::int(p), Value::str("flu")]);
        exhibits.push(vec![Value::int(p), Value::str("ache")]);
        treatments.push(vec![Value::int(p), Value::str("zorix")]);
    }
    let mut db = Database::new();
    db.insert(Relation::from_rows(
        Schema::new("diagnoses", &["p", "d"]),
        diagnoses,
    ));
    db.insert(Relation::from_rows(
        Schema::new("exhibits", &["p", "s"]),
        exhibits,
    ));
    db.insert(Relation::from_rows(
        Schema::new("treatments", &["p", "m"]),
        treatments,
    ));
    db.insert(Relation::from_rows(
        Schema::new("causes", &["d", "s"]),
        vec![vec![Value::str("pox"), Value::str("fever")]],
    ));

    // The Fig. 3 flock (one disease per patient assumed):
    let fig3 = QueryFlock::with_support(
        "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
         diagnoses(P,D) AND NOT causes(D,$s)",
        20,
    )
    .unwrap();
    let wrong = evaluate_direct(&fig3, &db, JoinOrderStrategy::Greedy).unwrap();
    println!("Fig. 3 flock (single-disease assumption) reports:");
    for t in wrong.iter() {
        let note = if t.get(1) == Value::str("fever") {
            "   <-- FALSE positive (explained by the second disease)"
        } else {
            ""
        };
        println!("  medicine={}  symptom={}{note}", t.get(0), t.get(1));
    }

    // The program with an intermediate predicate:
    let program = FlockProgram::parse(
        "explained(P,S) :- diagnoses(P,D) AND causes(D,S)
         QUERY:
         answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT explained(P,$s)
         FILTER:
         COUNT(answer.P) >= 20",
    )
    .unwrap();
    let evaluation = program.evaluate(&db).unwrap();
    println!(
        "\nWith the `explained` view (strategy: {}):",
        evaluation.strategy_used
    );
    for t in evaluation.result.iter() {
        println!("  medicine={}  symptom={}", t.get(0), t.get(1));
    }
}
