//! Export a flock and its optimized plan as SQL — the §2.1 promise that
//! "each of the advantages … can be translated to SQL terms", and the
//! migration path for running flock plans on a conventional DBMS.
//!
//! ```text
//! cargo run --example sql_export
//! ```

use query_flocks::core::{plan_to_sql, single_param_plan, to_sql, QueryFlock};
use query_flocks::datagen::baskets::{self, BasketConfig};
use query_flocks::storage::Database;

fn main() {
    let mut db = Database::new();
    db.insert(baskets::generate(&BasketConfig::default()).baskets);

    // The Fig. 2 flock…
    let pairs = QueryFlock::with_support(
        "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2",
        20,
    )
    .unwrap();
    println!("-- Fig. 1: the flock as one SQL statement");
    println!("{};\n", to_sql(&pairs).unwrap());

    // …and its a-priori plan as a SQL script (what §1.3's manual rewrite
    // did to a commercial DBMS, automated).
    let plan = single_param_plan(&pairs, &db).unwrap();
    println!("-- The generalized a-priori rewrite as a SQL script:");
    println!("{}", plan_to_sql(&plan).unwrap());

    // Negation translates to NOT EXISTS.
    let medical = QueryFlock::with_support(
        "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
         diagnoses(P,D) AND NOT causes(D,$s)",
        20,
    )
    .unwrap();
    println!("-- Fig. 3 (negation becomes NOT EXISTS):");
    println!("{};", to_sql(&medical).unwrap());
}
