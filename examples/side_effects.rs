//! The Ex. 2.2 medical-mining flock end to end: safe-subquery
//! enumeration (Ex. 3.2), the Fig. 5 static plan, cost-based plan
//! search, and the §4.4 dynamic evaluator with its decision trace.
//!
//! ```text
//! cargo run --release --example side_effects
//! ```

use query_flocks::core::{
    best_plan, evaluate_dynamic, execute_plan, DynamicConfig, JoinOrderStrategy, QueryFlock,
};
use query_flocks::datagen::medical::{self, MedicalConfig};
use query_flocks::datalog::subquery::safe_subqueries;

fn main() {
    let config = MedicalConfig {
        n_patients: 3000,
        rare_fraction: 0.4,
        ..MedicalConfig::default()
    };
    let data = medical::generate(&config);
    let flock = QueryFlock::parse(
        "QUERY:
         answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND
                      diagnoses(P,D) AND NOT causes(D,$s)
         FILTER:
         COUNT(answer.P) >= 20",
    )
    .unwrap();

    println!("The side-effects flock (Fig. 3):\n{flock}\n");

    // Ex. 3.2: which subgoal subsets are safe?
    let rule = flock.single_rule().unwrap();
    let subs = safe_subqueries(rule);
    println!("Safe subqueries ({} of 14 nontrivial subsets):", subs.len());
    for s in &subs {
        let params: Vec<String> = s.params().iter().map(|p| format!("${p}")).collect();
        println!("  [{:<6}] {}", params.join(","), s);
    }

    // Cost-based plan search over the legal plan space.
    let (plan, est_cost) = best_plan(&flock, &data.db).unwrap();
    println!(
        "\nCost-based search chose ({} steps, estimated cost {:.0} tuples):\n{plan}\n",
        plan.len(),
        est_cost
    );
    let run = execute_plan(&plan, &data.db, JoinOrderStrategy::Greedy).unwrap();
    println!("Unexplained (medicine, symptom) pairs with support >= 20:");
    for t in run.result.iter() {
        println!("  medicine={}  symptom={}", t.get(0), t.get(1));
    }
    println!("(planted ground truth: {:?})", data.planted);

    // §4.4: the dynamic evaluator decides filters from observed sizes.
    let report = evaluate_dynamic(&flock, &data.db, &DynamicConfig::default()).unwrap();
    assert_eq!(report.result.tuples(), run.result.tuples());
    println!("\nDynamic evaluation decisions (Ex. 4.4):");
    for d in &report.decisions {
        println!(
            "  after {:<28} tuples={:<7} assignments={:<6} ratio={:<8.2} {}",
            d.after_subgoal,
            d.tuples,
            d.assignments,
            d.ratio,
            if d.filtered {
                format!(
                    "FILTER → {} survive ({:?})",
                    d.survivors.unwrap_or(0),
                    d.reason
                )
            } else {
                format!("no filter ({:?})", d.reason)
            }
        );
    }
}
