//! Quickstart: define a query flock in the paper's notation, evaluate
//! it, and look at the machinery underneath.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use query_flocks::core::{
    evaluate_direct, single_param_plan, to_sql, JoinOrderStrategy, Optimizer, QueryFlock,
};
use query_flocks::storage::{Database, Relation, Schema, Value};

fn main() {
    // A tiny market-basket database: who bought what.
    let mut db = Database::new();
    let rows = [
        (1, "beer"),
        (1, "diapers"),
        (1, "chips"),
        (2, "beer"),
        (2, "diapers"),
        (3, "beer"),
        (3, "diapers"),
        (3, "relish"),
        (4, "beer"),
        (5, "chips"),
        (5, "relish"),
    ];
    db.insert(Relation::from_rows(
        Schema::new("baskets", &["bid", "item"]),
        rows.iter()
            .map(|&(b, i)| vec![Value::int(b), Value::str(i)])
            .collect(),
    ));

    // Fig. 2 of the paper, with a threshold suiting the tiny data: find
    // item pairs appearing together in at least 3 baskets.
    let flock = QueryFlock::parse(
        "QUERY:
         answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
         FILTER:
         COUNT(answer.B) >= 3",
    )
    .expect("valid flock");

    println!("The flock, as the paper writes it:\n{flock}\n");
    println!("…and as SQL (Fig. 1):\n{}\n", to_sql(&flock).unwrap());

    // Evaluate directly: one join-group-filter plan.
    let result = evaluate_direct(&flock, &db, JoinOrderStrategy::Greedy).unwrap();
    println!("Flock result (parameter assignments):");
    for t in result.iter() {
        println!("  $1 = {}, $2 = {}", t.get(0), t.get(1));
    }

    // The generalized a-priori plan the optimizer would pick instead.
    let plan = single_param_plan(&flock, &db).unwrap();
    println!("\nThe a-priori query plan (Fig. 5 notation):\n{plan}");

    // Or let the optimizer choose a strategy end to end.
    let evaluation = Optimizer::new().evaluate(&flock, &db).unwrap();
    println!(
        "\nOptimizer used `{}` and found {} pair(s).",
        evaluation.strategy_used,
        evaluation.result.len()
    );
}
