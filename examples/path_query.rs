//! The Ex. 4.3 "pathological" path flock and its Fig. 7 chain plan:
//! the example showing the space of useful plans is not even
//! exponentially bounded.
//!
//! ```text
//! cargo run --release --example path_query
//! ```

use query_flocks::core::{
    chain_plan, evaluate_direct, execute_plan, JoinOrderStrategy, QueryFlock,
};
use query_flocks::datagen::graph::{self, GraphConfig};
use query_flocks::storage::Database;

fn main() {
    let mut db = Database::new();
    db.insert(graph::generate(&GraphConfig {
        n_nodes: 2000,
        n_random_arcs: 5000,
        n_hubs: 6,
        hub_degree: 30,
        chain_len: 6,
        seed: 7,
    }));
    println!(
        "graph: {} arcs; flock: nodes with >= 20 successors that extend a path\n",
        db.get("arc").unwrap().len()
    );

    for n in 1..=4usize {
        // Fig. 6: answer(X) :- arc($1,X) AND arc(X,Y1) AND … arc(Y_{n-1},Yn)
        let mut body = vec!["arc($1,X)".to_string()];
        let mut prev = "X".to_string();
        for i in 1..=n {
            body.push(format!("arc({prev},Y{i})"));
            prev = format!("Y{i}");
        }
        let flock =
            QueryFlock::with_support(&format!("answer(X) :- {}", body.join(" AND ")), 20).unwrap();

        let start = std::time::Instant::now();
        let direct = evaluate_direct(&flock, &db, JoinOrderStrategy::AsWritten).unwrap();
        let direct_t = start.elapsed();

        let plan = chain_plan(&flock).unwrap();
        let start = std::time::Instant::now();
        let chained = execute_plan(&plan, &db, JoinOrderStrategy::AsWritten).unwrap();
        let chain_t = start.elapsed();
        assert_eq!(direct.tuples(), chained.result.tuples());

        println!(
            "n={n}: {} qualifying nodes | direct {:?} | {}-step chain {:?} ({:.1}x)",
            direct.len(),
            direct_t,
            plan.len(),
            chain_t,
            direct_t.as_secs_f64() / chain_t.as_secs_f64().max(1e-9)
        );
        if n == 2 {
            println!("\nThe Fig. 7 chain plan at n=2:\n{plan}\n");
        }
    }
}
