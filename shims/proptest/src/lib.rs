//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this local shim
//! implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*`/`prop_assume!`,
//! [`Strategy`] with `prop_map`/`boxed`, range/tuple/collection/sample
//! strategies, weighted [`prop_oneof!`], [`any`], and a crude string
//! strategy for parser-robustness tests.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; seeds are deterministic per test name, so failures
//!   reproduce exactly.
//! * **String "regex" strategies** ignore the pattern's character class
//!   and generate adversarial unicode/ASCII soup of the requested
//!   length — which is what the only user (a "parser never panics"
//!   test) actually wants.
//! * Regression files (`*.proptest-regressions`) are ignored.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Deterministic split-mix style generator for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Build the deterministic RNG for a named test (FNV-1a over the name).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h)
}

/// Result of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; try another.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising plenty of structure. Tests that need more ask via
        // `ProptestConfig::with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Weighted choice among boxed strategies (backs [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

// ---- primitive strategies ------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// String strategy from a "regex" pattern (see module docs: the
/// character class is ignored; only a trailing `{lo,hi}` repetition is
/// honoured, defaulting to `{0,32}`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 32));
        let len = lo + rng.below(hi - lo + 1);
        // Adversarial soup: ASCII printable, whitespace/control-ish,
        // multi-byte unicode, and characters meaningful to the parsers
        // under test.
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', '_', '$', '(', ')', ',', '.', ':', '-', '<', '>',
            '=', '!', '*', '"', '\'', '\\', '/', ' ', '\t', '\u{7f}', 'é', 'λ', '中', '🦀',
            '\u{202e}', '\u{0}',
        ];
        (0..len).map(|_| POOL[rng.below(POOL.len())]).collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body[brace + 1..].split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

/// Strategy for a type's canonical value distribution ([`any`]).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draw one canonical value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- collection / sample strategies --------------------------------------

/// `prop::collection` equivalents.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification: a half-open range or an exact `usize` count.
    pub trait IntoSizeRange {
        /// Convert to the half-open `[lo, hi)` form.
        fn into_size_range(self) -> std::ops::Range<usize>;
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self..self + 1
        }
    }

    /// Vec of elements drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.into_size_range();
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.start + rng.below(self.size.end - self.size.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeSet with a target size in `range` (duplicates may make the
    /// result smaller, matching upstream semantics loosely).
    pub fn btree_set<S>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty set size range");
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.start + rng.below(self.size.end - self.size.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::sample` equivalents.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed, nonempty option list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

thread_local! {
    /// Rejection counter for diagnostics from the harness loop.
    static REJECTS: Cell<u64> = const { Cell::new(0) };
}

/// Internal harness entry used by the [`proptest!`] expansion: runs up
/// to `cases` successful cases, retrying `prop_assume!` rejections a
/// bounded number of times, panicking with reproduction info on the
/// first failure.
pub fn run_cases<I: std::fmt::Debug, G, B>(
    test_name: &str,
    config: &ProptestConfig,
    mut generate: G,
    mut body: B,
) where
    G: FnMut(&mut TestRng) -> I,
    B: FnMut(&I) -> Result<(), TestCaseError>,
{
    let mut rng = rng_for(test_name);
    let mut ran: u32 = 0;
    let mut attempts: u64 = 0;
    let max_attempts = (config.cases as u64).saturating_mul(20).max(100);
    REJECTS.with(|r| r.set(0));
    while ran < config.cases && attempts < max_attempts {
        attempts += 1;
        let input = generate(&mut rng);
        match body(&input) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                REJECTS.with(|r| r.set(r.get() + 1));
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest failure in `{test_name}` (case {ran}, attempt {attempts}):\n\
                     {msg}\ninput: {input:#?}"
                );
            }
        }
    }
    // Like upstream, demand that assumptions were satisfiable often
    // enough to do real testing.
    assert!(
        ran > 0,
        "proptest `{test_name}`: every generated case was rejected by prop_assume!"
    );
}

/// Dedup helper so `BTreeSet` is nameable from macro output without
/// imports.
pub type SetOf<T> = BTreeSet<T>;

// ---- macros --------------------------------------------------------------

/// Property-test harness macro (see upstream proptest documentation;
/// this shim supports `#![proptest_config(..)]`, `arg in strategy`
/// parameter lists, and outer attributes including `#[test]`).
#[macro_export]
macro_rules! proptest {
    // Internal rule: must come before the catch-all or recursion loops.
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            // A tuple of strategies is itself a strategy producing the
            // tuple of values, so one generate call draws every arg.
            let __strategies = ($($strat,)+);
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| $crate::Strategy::generate(&__strategies, __rng),
                |__input| {
                    #[allow(unused_parens, irrefutable_let_patterns)]
                    let ($($arg,)+) = ::std::clone::Clone::clone(__input);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )*};
    // With a config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Veto the current case; the harness draws a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted alternation of strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_rng() {
        let mut a = super::rng_for("x");
        let mut b = super::rng_for("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(v in -5i64..5, u in 0usize..9) {
            prop_assert!((-5..5).contains(&v));
            prop_assert!(u < 9);
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec((0i64..4, 0i64..4), 2..7)) {
            prop_assert!((2..7).contains(&xs.len()));
        }

        #[test]
        fn assume_rejects(v in 0i64..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![3 => (0i64..5).prop_map(|v| v * 2), 1 => 10i64..12]) {
            prop_assert!(t < 12);
        }

        #[test]
        fn select_picks_member(s in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&s));
        }

        #[test]
        fn string_pattern_len(s in "\\PC{0,8}") {
            prop_assert!(s.chars().count() <= 8);
        }

        #[test]
        fn bool_any(b in any::<bool>()) {
            prop_assert!(usize::from(b) <= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_honoured(_v in 0i64..3) {
            prop_assert!(true);
        }
    }
}
