//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this local shim
//! provides exactly the API subset the workspace uses: `StdRng` seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] convenience
//! methods `gen`, `gen_bool`, and `gen_range`. The generator is
//! xoshiro256** (seeded through SplitMix64), which is more than enough
//! statistical quality for synthetic-workload generation. Streams are
//! deterministic per seed but are NOT the same streams as upstream
//! `rand`; code in this workspace only relies on per-seed determinism.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers over an [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its canonical distribution
    /// (`f64` uniform in `[0,1)`, integers uniform over their range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their canonical distribution.
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for workload generation.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, per Vigna's reference seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..17usize);
            assert!(u < 17);
            let f: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
