//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset the workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. It runs each benchmark a handful of timed
//! iterations and prints mean wall-clock time — no statistics, plots,
//! or baselines, but `cargo bench` compiles and produces usable
//! relative numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Register a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
}

impl Bencher {
    /// Time `routine`, keeping its result alive via `black_box`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    // Warm-up / calibration pass (uncounted).
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    let total: Duration = b.samples.iter().sum();
    let mean = if b.samples.is_empty() {
        Duration::ZERO
    } else {
        total / b.samples.len() as u32
    };
    println!("  {name}: mean {mean:?} over {} samples", b.samples.len());
}

/// Collect benchmark functions into a named runner (shim: a plain fn).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
